package comp

import (
	"strings"
	"testing"
)

// Printing coverage: every AST node renders, and the printed form of
// the paper's queries contains the expected surface syntax.
func TestASTStringForms(t *testing.T) {
	cases := map[string]Expr{
		"x":                    Var{"x"},
		"3":                    Lit{int64(3)},
		"(x, 1)":               TupleExpr{[]Expr{Var{"x"}, Lit{int64(1)}}},
		"(x + 1)":              BinOp{"+", Var{"x"}, Lit{int64(1)}},
		"-x":                   UnaryOp{"-", Var{"x"}},
		"f(x, 2)":              Call{"f", []Expr{Var{"x"}, Lit{int64(2)}}},
		"M[i, j]":              Index{Var{"M"}, []Expr{Var{"i"}, Var{"j"}}},
		"+/v":                  Reduce{"+", Var{"v"}},
		"if(b, 1, 2)":          IfExpr{Var{"b"}, Lit{int64(1)}, Lit{int64(2)}},
		"matrix(2, 3)[ x |  ]": BuildExpr{"matrix", []Expr{Lit{int64(2)}, Lit{int64(3)}}, Comprehension{Head: Var{"x"}}},
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Fatalf("String() = %q want %q", got, want)
		}
	}
}

func TestQualifierStringForms(t *testing.T) {
	g := Generator{Pat: PT(PV("i"), PV("v")), Src: Var{"V"}}
	if g.String() != "(i,v) <- V" {
		t.Fatalf("generator %q", g.String())
	}
	l := LetQual{Pat: PV("x"), E: Lit{int64(1)}}
	if l.String() != "let x = 1" {
		t.Fatalf("let %q", l.String())
	}
	gb := GroupBy{Pat: PV("k")}
	if gb.String() != "group by k" {
		t.Fatalf("group %q", gb.String())
	}
	gbo := GroupBy{Pat: PV("k"), Of: Var{"i"}}
	if gbo.String() != "group by k: i" {
		t.Fatalf("group-of %q", gbo.String())
	}
	gd := Guard{E: BinOp{"==", Var{"i"}, Var{"j"}}}
	if !strings.Contains(gd.String(), "==") {
		t.Fatalf("guard %q", gd.String())
	}
}

func TestComprehensionString(t *testing.T) {
	c := Comprehension{
		Head: TupleExpr{[]Expr{Var{"i"}, Reduce{"+", Var{"v"}}}},
		Quals: []Qualifier{
			Generator{Pat: PT(PT(PV("i"), PV("j")), PV("v")), Src: Var{"M"}},
			GroupBy{Pat: PV("i")},
		},
	}
	got := c.String()
	for _, want := range []string{"((i,j),v) <- M", "group by i", "+/v"} {
		if !strings.Contains(got, want) {
			t.Fatalf("%q missing %q", got, want)
		}
	}
}

func TestBuildExprStringNoArgs(t *testing.T) {
	b := BuildExpr{Builder: "rdd", Body: Comprehension{Head: Var{"x"}}}
	if !strings.HasPrefix(b.String(), "rdd[") {
		t.Fatalf("rdd build %q", b.String())
	}
}

func TestEvalBuiltinsMath(t *testing.T) {
	cases := []struct {
		e    Expr
		want Value
	}{
		{Call{"abs", []Expr{Lit{int64(-3)}}}, int64(3)},
		{Call{"abs", []Expr{Lit{-2.5}}}, 2.5},
		{Call{"sqrt", []Expr{Lit{9.0}}}, 3.0},
		{Call{"pow", []Expr{Lit{2.0}, Lit{10.0}}}, 1024.0},
		{Call{"max", []Expr{Lit{int64(2)}, Lit{int64(5)}}}, int64(5)},
		{Call{"min", []Expr{Lit{int64(2)}, Lit{int64(5)}}}, int64(2)},
		{Call{"length", []Expr{Lit{L(int64(1), int64(2))}}}, int64(2)},
		{Call{"sum", []Expr{Lit{L(1.0, 2.0)}}}, 3.0},
		{Call{"avg", []Expr{Lit{L(1.0, 3.0)}}}, 2.0},
		{Call{"int", []Expr{Lit{3.9}}}, int64(3)},
	}
	for _, c := range cases {
		if got := MustEval(c.e, nil); !Equal(got, c.want) {
			t.Fatalf("%s = %v want %v", c.e, got, c.want)
		}
	}
	// exp(log(x)) == x.
	got := MustEval(Call{"exp", []Expr{Call{"log", []Expr{Lit{5.0}}}}}, nil)
	if d := MustFloat(got) - 5; d > 1e-12 || d < -1e-12 {
		t.Fatalf("exp(log(5)) = %v", got)
	}
}

func TestEvalBuiltinErrors(t *testing.T) {
	if _, err := Eval(Call{"nosuchfn", nil}, nil); err == nil {
		t.Fatal("unknown function should error")
	}
	if _, err := Eval(Call{"sqrt", []Expr{Lit{1.0}, Lit{2.0}}}, nil); err == nil {
		t.Fatal("arity error expected")
	}
	if _, err := Eval(BinOp{"%", Lit{int64(1)}, Lit{int64(0)}}, nil); err == nil {
		t.Fatal("modulo by zero should error")
	}
	if _, err := Eval(BinOp{"/", Lit{int64(1)}, Lit{int64(0)}}, nil); err == nil {
		t.Fatal("division by zero should error")
	}
}

func TestBindAll(t *testing.T) {
	env := (*Env)(nil).BindAll(map[string]Value{"a": int64(1), "b": int64(2)})
	va, _ := env.Lookup("a")
	vb, _ := env.Lookup("b")
	if va != int64(1) || vb != int64(2) {
		t.Fatal("BindAll lookup")
	}
}
