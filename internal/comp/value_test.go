package comp

import (
	"strings"
	"testing"
)

func TestCoercions(t *testing.T) {
	if v, ok := AsInt(int64(3)); !ok || v != 3 {
		t.Fatal("int64")
	}
	if v, ok := AsInt(3); !ok || v != 3 {
		t.Fatal("int")
	}
	if v, ok := AsInt(3.9); !ok || v != 3 {
		t.Fatal("float truncation")
	}
	if _, ok := AsInt("3"); ok {
		t.Fatal("string must not coerce")
	}
	if v, ok := AsFloat(int64(2)); !ok || v != 2.0 {
		t.Fatal("int to float")
	}
	if MustBool(true) != true {
		t.Fatal("bool")
	}
}

func TestMustPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MustInt":   func() { MustInt("x") },
		"MustFloat": func() { MustFloat(true) },
		"MustBool":  func() { MustBool(1) },
		"MustTuple": func() { MustTuple(L()) },
		"MustList":  func() { MustList(T()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEqualStructural(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{int64(1), 1.0, true}, // numeric coercion
		{int64(1), int64(2), false},
		{T(int64(1), "x"), T(int64(1), "x"), true},
		{T(int64(1)), T(int64(1), int64(2)), false},
		{L(int64(1)), L(int64(1)), true},
		{L(int64(1)), T(int64(1)), false},
		{"a", "a", true},
		{true, false, false},
		{nil, nil, true},
	}
	for _, c := range cases {
		if Equal(c.a, c.b) != c.want {
			t.Fatalf("Equal(%v, %v) != %v", Render(c.a), Render(c.b), c.want)
		}
	}
}

func TestRenderForms(t *testing.T) {
	cases := map[string]Value{
		"(1, 2)":      T(int64(1), int64(2)),
		"[1, 2]":      L(int64(1), int64(2)),
		`"hi"`:        "hi",
		"()":          nil,
		"2.5":         2.5,
		"true":        true,
		"((1), [()])": T(T(int64(1)), L(Value(nil))),
	}
	for want, v := range cases {
		if got := Render(v); got != want {
			t.Fatalf("Render(%#v) = %q want %q", v, got, want)
		}
	}
}

func TestSortByKeyStable(t *testing.T) {
	l := L(
		T(int64(2), "b"),
		T(int64(1), "a"),
		T(int64(2), "c"),
	)
	sorted := SortByKey(l)
	if !Equal(sorted[0], T(int64(1), "a")) {
		t.Fatalf("sorted %v", Render(sorted))
	}
	// Stability: the two key-2 entries keep their relative order.
	if !Equal(sorted[1], T(int64(2), "b")) || !Equal(sorted[2], T(int64(2), "c")) {
		t.Fatalf("stability broken: %v", Render(sorted))
	}
}

func TestKeyStringSpecials(t *testing.T) {
	if !strings.Contains(KeyString(T(int64(1), "a")), `"a"`) {
		t.Fatal("strings should be quoted in keys")
	}
	if KeyString(1.5) == KeyString(int64(1)) {
		t.Fatal("1.5 must differ from 1")
	}
	if KeyString(nil) != "()" {
		t.Fatalf("unit key %q", KeyString(nil))
	}
	if KeyString(true) != "true" {
		t.Fatal("bool key")
	}
}

// Multiple group-bys in one comprehension lift variables repeatedly
// (the paper notes variables are lifted once per group-by).
func TestEvalDoubleGroupBy(t *testing.T) {
	// [ (k2, count(k)) | (i,v) <- V, group by k: i % 4, group by k2: k % 2 ]
	// First group by i%4 -> keys {0,1,2,3}; then group those keys by
	// parity -> two groups of two keys each.
	q := Comprehension{
		Head: TupleExpr{[]Expr{Var{"k2"}, Call{Fn: "count", Args: []Expr{Var{"k"}}}}},
		Quals: []Qualifier{
			Generator{Pat: PT(PV("i"), PV("v")), Src: Var{"V"}},
			GroupBy{Pat: PV("k"), Of: BinOp{"%", Var{"i"}, Lit{int64(4)}}},
			GroupBy{Pat: PV("k2"), Of: BinOp{"%", Var{"k"}, Lit{int64(2)}}},
		},
	}
	var entries List
	for i := 0; i < 8; i++ {
		entries = append(entries, T(int64(i), float64(i)))
	}
	got := SortByKey(MustEval(q, env0(map[string]Value{"V": entries})).(List))
	want := L(T(int64(0), int64(2)), T(int64(1), int64(2)))
	if !Equal(got, want) {
		t.Fatalf("double group-by %v want %v", Render(got), Render(want))
	}
}

func TestRangeValue(t *testing.T) {
	r := Range{Lo: 3, Hi: 3}
	if r.Len() != 0 || len(r.ToList()) != 0 {
		t.Fatal("empty range")
	}
	r2 := Range{Lo: 5, Hi: 2}
	if r2.Len() != 0 {
		t.Fatal("inverted range should be empty")
	}
	if got := (Range{Lo: 0, Hi: 3}).String(); got != "0 until 3" {
		t.Fatalf("range string %q", got)
	}
}

func TestFoldConstants(t *testing.T) {
	e := MustParse2(t, "(2 + 3) * 4")
	folded := FoldConstants(e)
	lit, ok := folded.(Lit)
	if !ok || !Equal(lit.Val, int64(20)) {
		t.Fatalf("folded to %v", folded)
	}
	// Ranges stay symbolic.
	r := FoldConstants(BinOp{"until", Lit{int64(0)}, Lit{int64(5)}})
	if _, ok := r.(BinOp); !ok {
		t.Fatal("range must not fold")
	}
}

// MustParse2 avoids importing sacparser (cycle): tiny literal builder.
func MustParse2(t *testing.T, src string) Expr {
	t.Helper()
	switch src {
	case "(2 + 3) * 4":
		return BinOp{"*", BinOp{"+", Lit{int64(2)}, Lit{int64(3)}}, Lit{int64(4)}}
	}
	t.Fatalf("unknown fixture %q", src)
	return nil
}

func TestSubstConstsShadowing(t *testing.T) {
	// n is a constant, but the inner comprehension rebinds n; the
	// occurrence under the binding must not be substituted.
	inner := Comprehension{
		Head:  Var{"n"},
		Quals: []Qualifier{Generator{Pat: PV("n"), Src: Var{"xs"}}},
	}
	out := SubstConsts(inner, map[string]Value{"n": int64(9)}).(Comprehension)
	if _, isLit := out.Head.(Lit); isLit {
		t.Fatal("shadowed variable was substituted")
	}
	// Unshadowed occurrences fold.
	e := SubstConsts(BinOp{"+", Var{"n"}, Lit{int64(1)}}, map[string]Value{"n": int64(9)})
	if v := MustEval(e, nil); v != int64(10) {
		t.Fatalf("subst result %v", v)
	}
}
