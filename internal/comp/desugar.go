package comp

import (
	"fmt"
)

// This file implements the paper's source-to-source rules:
//
//   - array-index desugaring (Section 2): V[e1,...,en] inside a
//     comprehension becomes a generator ((k1,...,kn),k0) <- V plus the
//     guards k1 == e1, ..., kn == en, with V[e1,...,en] replaced by k0;
//   - Rule (3): flattening of nested comprehensions;
//   - group by p : e  ==  let p = e, group by p;
//   - fusion of equal range generators (index-bound merging).

// freshCounter generates fresh variable names for desugaring.
type freshCounter struct{ n int }

func (f *freshCounter) fresh(prefix string) string {
	f.n++
	// The `_c` namespace keeps desugaring-generated names disjoint
	// from user variables and from the DIABLO front end's `_d` names.
	return fmt.Sprintf("_c%s%d", prefix, f.n)
}

// Desugar applies all source-to-source rewrites to an expression,
// producing a normalized comprehension ready for planning.
func Desugar(e Expr) Expr {
	f := &freshCounter{}
	e = desugarGroupByOf(e)
	e = desugarIndexing(e, f)
	e = flattenNested(e, f)
	return e
}

// mapExpr applies fn bottom-up over the expression tree.
func mapExpr(e Expr, fn func(Expr) Expr) Expr {
	switch x := e.(type) {
	case Var, Lit:
		return fn(e)
	case TupleExpr:
		elems := make([]Expr, len(x.Elems))
		for i, s := range x.Elems {
			elems[i] = mapExpr(s, fn)
		}
		return fn(TupleExpr{Elems: elems})
	case BinOp:
		return fn(BinOp{Op: x.Op, L: mapExpr(x.L, fn), R: mapExpr(x.R, fn)})
	case UnaryOp:
		return fn(UnaryOp{Op: x.Op, E: mapExpr(x.E, fn)})
	case Call:
		args := make([]Expr, len(x.Args))
		for i, s := range x.Args {
			args[i] = mapExpr(s, fn)
		}
		return fn(Call{Fn: x.Fn, Args: args})
	case Index:
		idxs := make([]Expr, len(x.Idxs))
		for i, s := range x.Idxs {
			idxs[i] = mapExpr(s, fn)
		}
		return fn(Index{Arr: mapExpr(x.Arr, fn), Idxs: idxs})
	case Reduce:
		return fn(Reduce{Monoid: x.Monoid, E: mapExpr(x.E, fn)})
	case IfExpr:
		return fn(IfExpr{Cond: mapExpr(x.Cond, fn), Then: mapExpr(x.Then, fn), Else: mapExpr(x.Else, fn)})
	case Comprehension:
		quals := make([]Qualifier, len(x.Quals))
		for i, q := range x.Quals {
			quals[i] = mapQual(q, fn)
		}
		return fn(Comprehension{Head: mapExpr(x.Head, fn), Quals: quals})
	case BuildExpr:
		args := make([]Expr, len(x.Args))
		for i, s := range x.Args {
			args[i] = mapExpr(s, fn)
		}
		return fn(BuildExpr{Builder: x.Builder, Args: args, Body: mapExpr(x.Body, fn)})
	default:
		panic(fmt.Sprintf("comp: mapExpr: unknown %T", e))
	}
}

func mapQual(q Qualifier, fn func(Expr) Expr) Qualifier {
	switch qq := q.(type) {
	case Generator:
		return Generator{Pat: qq.Pat, Src: mapExpr(qq.Src, fn)}
	case LetQual:
		return LetQual{Pat: qq.Pat, E: mapExpr(qq.E, fn)}
	case Guard:
		return Guard{E: mapExpr(qq.E, fn)}
	case GroupBy:
		if qq.Of != nil {
			return GroupBy{Pat: qq.Pat, Of: mapExpr(qq.Of, fn)}
		}
		return qq
	default:
		panic(fmt.Sprintf("comp: mapQual: unknown %T", q))
	}
}

// desugarGroupByOf rewrites group by p : e into let p = e, group by p
// everywhere.
func desugarGroupByOf(e Expr) Expr {
	return mapExpr(e, func(x Expr) Expr {
		c, ok := x.(Comprehension)
		if !ok {
			return x
		}
		var quals []Qualifier
		changed := false
		for _, q := range c.Quals {
			if g, ok := q.(GroupBy); ok && g.Of != nil {
				quals = append(quals, LetQual{Pat: g.Pat, E: g.Of}, GroupBy{Pat: g.Pat})
				changed = true
				continue
			}
			quals = append(quals, q)
		}
		if !changed {
			return x
		}
		return Comprehension{Head: c.Head, Quals: quals}
	})
}

// desugarIndexing removes Index expressions from comprehension heads,
// guards, and lets by introducing generators over the indexed array
// plus equality guards (Section 2). Index expressions outside a
// comprehension are left for the evaluator's direct access path.
func desugarIndexing(e Expr, f *freshCounter) Expr {
	return mapExpr(e, func(x Expr) Expr {
		c, ok := x.(Comprehension)
		if !ok {
			return x
		}
		return desugarComprehensionIndexing(c, f)
	})
}

func desugarComprehensionIndexing(c Comprehension, f *freshCounter) Expr {
	var newGens []Qualifier
	// rewrite replaces V[e...] with a fresh variable and queues the
	// generator + guards. Only variable-rooted arrays are rewritten.
	rewrite := func(e Expr) Expr {
		return mapExpr(e, func(x Expr) Expr {
			idx, ok := x.(Index)
			if !ok {
				return x
			}
			if _, isVar := idx.Arr.(Var); !isVar {
				return x
			}
			val := f.fresh("v")
			keyPats := make([]Pattern, len(idx.Idxs))
			for i := range idx.Idxs {
				keyPats[i] = PV(f.fresh("k"))
			}
			var keyPat Pattern
			if len(keyPats) == 1 {
				keyPat = keyPats[0]
			} else {
				keyPat = PT(keyPats...)
			}
			newGens = append(newGens, Generator{Pat: PT(keyPat, PV(val)), Src: idx.Arr})
			for i, ke := range idx.Idxs {
				newGens = append(newGens, Guard{E: BinOp{Op: "==", L: Var{Name: keyPats[i].(PVar).Name}, R: ke}})
			}
			return Var{Name: val}
		})
	}

	var quals []Qualifier
	for _, q := range c.Quals {
		switch qq := q.(type) {
		case Generator:
			quals = append(quals, Generator{Pat: qq.Pat, Src: rewrite(qq.Src)})
		case LetQual:
			quals = append(quals, LetQual{Pat: qq.Pat, E: rewrite(qq.E)})
		case Guard:
			quals = append(quals, Guard{E: rewrite(qq.E)})
		case GroupBy:
			quals = append(quals, qq)
		}
		if len(newGens) > 0 {
			// Insert queued generators right after the qualifier whose
			// expression referenced the array, so bindings are in scope.
			quals = append(quals[:len(quals)-1], append(newGens, quals[len(quals)-1])...)
			newGens = nil
		}
	}
	head := rewrite(c.Head)
	quals = append(quals, newGens...)
	return Comprehension{Head: head, Quals: quals}
}

// flattenNested applies Rule (3):
//
//	[ e1 | q1, p <- [ e2 | q3 ], q2 ] = [ e1 | q1, q3, let p = e2, q2 ]
//
// provided the inner comprehension has no group-by (the rule's side
// condition). Inner variables are renamed to avoid capture.
func flattenNested(e Expr, f *freshCounter) Expr {
	return mapExpr(e, func(x Expr) Expr {
		c, ok := x.(Comprehension)
		if !ok {
			return x
		}
		for {
			changed := false
			var quals []Qualifier
			for _, q := range c.Quals {
				g, ok := q.(Generator)
				if !ok {
					quals = append(quals, q)
					continue
				}
				inner, ok := g.Src.(Comprehension)
				if !ok || hasGroupBy(inner) {
					quals = append(quals, q)
					continue
				}
				renamed := renameComprehension(inner, f)
				quals = append(quals, renamed.Quals...)
				quals = append(quals, LetQual{Pat: g.Pat, E: renamed.Head})
				changed = true
			}
			c = Comprehension{Head: c.Head, Quals: quals}
			if !changed {
				return c
			}
		}
	})
}

func hasGroupBy(c Comprehension) bool {
	for _, q := range c.Quals {
		if _, ok := q.(GroupBy); ok {
			return true
		}
	}
	return false
}

// renameComprehension alpha-renames every variable bound inside c to a
// fresh name, to prevent capture when its qualifiers are spliced into
// an outer comprehension.
func renameComprehension(c Comprehension, f *freshCounter) Comprehension {
	sub := map[string]string{}
	renamePat := func(p Pattern) Pattern { return renamePattern(p, sub, f) }
	renameExpr := func(e Expr) Expr { return substituteVars(e, sub) }

	var quals []Qualifier
	for _, q := range c.Quals {
		switch qq := q.(type) {
		case Generator:
			src := renameExpr(qq.Src)
			quals = append(quals, Generator{Pat: renamePat(qq.Pat), Src: src})
		case LetQual:
			e := renameExpr(qq.E)
			quals = append(quals, LetQual{Pat: renamePat(qq.Pat), E: e})
		case Guard:
			quals = append(quals, Guard{E: renameExpr(qq.E)})
		case GroupBy:
			// Group-by keys refer to already-bound (renamed) vars.
			quals = append(quals, GroupBy{Pat: renameBoundPattern(qq.Pat, sub)})
		}
	}
	return Comprehension{Head: renameExpr(c.Head), Quals: quals}
}

func renamePattern(p Pattern, sub map[string]string, f *freshCounter) Pattern {
	switch pp := p.(type) {
	case PVar:
		if pp.Name == "_" {
			return pp
		}
		nn := f.fresh(pp.Name)
		sub[pp.Name] = nn
		return PV(nn)
	case PTuple:
		elems := make([]Pattern, len(pp.Elems))
		for i, s := range pp.Elems {
			elems[i] = renamePattern(s, sub, f)
		}
		return PT(elems...)
	default:
		panic(fmt.Sprintf("comp: renamePattern: unknown %T", p))
	}
}

func renameBoundPattern(p Pattern, sub map[string]string) Pattern {
	switch pp := p.(type) {
	case PVar:
		if nn, ok := sub[pp.Name]; ok {
			return PV(nn)
		}
		return pp
	case PTuple:
		elems := make([]Pattern, len(pp.Elems))
		for i, s := range pp.Elems {
			elems[i] = renameBoundPattern(s, sub)
		}
		return PT(elems...)
	default:
		panic(fmt.Sprintf("comp: renameBoundPattern: unknown %T", p))
	}
}

// substituteVars replaces free variable occurrences per sub. Inner
// comprehensions that rebind a name shadow the substitution.
func substituteVars(e Expr, sub map[string]string) Expr {
	if len(sub) == 0 {
		return e
	}
	switch x := e.(type) {
	case Var:
		if nn, ok := sub[x.Name]; ok {
			return Var{Name: nn}
		}
		return x
	case Lit:
		return x
	case TupleExpr:
		elems := make([]Expr, len(x.Elems))
		for i, s := range x.Elems {
			elems[i] = substituteVars(s, sub)
		}
		return TupleExpr{Elems: elems}
	case BinOp:
		return BinOp{Op: x.Op, L: substituteVars(x.L, sub), R: substituteVars(x.R, sub)}
	case UnaryOp:
		return UnaryOp{Op: x.Op, E: substituteVars(x.E, sub)}
	case Call:
		args := make([]Expr, len(x.Args))
		for i, s := range x.Args {
			args[i] = substituteVars(s, sub)
		}
		return Call{Fn: x.Fn, Args: args}
	case Index:
		idxs := make([]Expr, len(x.Idxs))
		for i, s := range x.Idxs {
			idxs[i] = substituteVars(s, sub)
		}
		return Index{Arr: substituteVars(x.Arr, sub), Idxs: idxs}
	case Reduce:
		return Reduce{Monoid: x.Monoid, E: substituteVars(x.E, sub)}
	case IfExpr:
		return IfExpr{Cond: substituteVars(x.Cond, sub), Then: substituteVars(x.Then, sub), Else: substituteVars(x.Else, sub)}
	case BuildExpr:
		args := make([]Expr, len(x.Args))
		for i, s := range x.Args {
			args[i] = substituteVars(s, sub)
		}
		return BuildExpr{Builder: x.Builder, Args: args, Body: substituteVars(x.Body, sub)}
	case Comprehension:
		// Respect shadowing: remove substitutions for rebound names.
		inner := map[string]string{}
		for k, v := range sub {
			inner[k] = v
		}
		var quals []Qualifier
		for _, q := range x.Quals {
			switch qq := q.(type) {
			case Generator:
				src := substituteVars(qq.Src, inner)
				for _, n := range PatternVars(qq.Pat) {
					delete(inner, n)
				}
				quals = append(quals, Generator{Pat: qq.Pat, Src: src})
			case LetQual:
				e2 := substituteVars(qq.E, inner)
				for _, n := range PatternVars(qq.Pat) {
					delete(inner, n)
				}
				quals = append(quals, LetQual{Pat: qq.Pat, E: e2})
			case Guard:
				quals = append(quals, Guard{E: substituteVars(qq.E, inner)})
			case GroupBy:
				var of Expr
				if qq.Of != nil {
					of = substituteVars(qq.Of, inner)
				}
				pat := renameBoundPattern(qq.Pat, inner)
				for _, n := range PatternVars(qq.Pat) {
					delete(inner, n)
				}
				quals = append(quals, GroupBy{Pat: pat, Of: of})
			}
		}
		return Comprehension{Head: substituteVars(x.Head, inner), Quals: quals}
	default:
		panic(fmt.Sprintf("comp: substituteVars: unknown %T", e))
	}
}

// SubstExpr replaces free variables by expressions. It is used by the
// planner to inline let bindings into kernel expressions; the input
// must not contain comprehensions or builders (the planner's kernel
// expressions never do).
func SubstExpr(e Expr, sub map[string]Expr) Expr {
	if len(sub) == 0 {
		return e
	}
	switch x := e.(type) {
	case Var:
		if r, ok := sub[x.Name]; ok {
			return r
		}
		return x
	case Lit:
		return x
	case TupleExpr:
		elems := make([]Expr, len(x.Elems))
		for i, s := range x.Elems {
			elems[i] = SubstExpr(s, sub)
		}
		return TupleExpr{Elems: elems}
	case BinOp:
		return BinOp{Op: x.Op, L: SubstExpr(x.L, sub), R: SubstExpr(x.R, sub)}
	case UnaryOp:
		return UnaryOp{Op: x.Op, E: SubstExpr(x.E, sub)}
	case Call:
		args := make([]Expr, len(x.Args))
		for i, s := range x.Args {
			args[i] = SubstExpr(s, sub)
		}
		return Call{Fn: x.Fn, Args: args}
	case Index:
		idxs := make([]Expr, len(x.Idxs))
		for i, s := range x.Idxs {
			idxs[i] = SubstExpr(s, sub)
		}
		return Index{Arr: SubstExpr(x.Arr, sub), Idxs: idxs}
	case Reduce:
		return Reduce{Monoid: x.Monoid, E: SubstExpr(x.E, sub)}
	case IfExpr:
		return IfExpr{Cond: SubstExpr(x.Cond, sub), Then: SubstExpr(x.Then, sub), Else: SubstExpr(x.Else, sub)}
	default:
		panic(fmt.Sprintf("comp: SubstExpr: unsupported %T", e))
	}
}

// SubstConsts replaces free occurrences of the given names by literal
// values throughout an expression, respecting shadowing by patterns.
// The planner uses it to fold catalog scalars (dimensions, tile
// counts) into queries so the affine-key analysis of Rule 19 can see
// them.
func SubstConsts(e Expr, consts map[string]Value) Expr {
	if len(consts) == 0 {
		return e
	}
	return substConsts(e, consts)
}

func substConsts(e Expr, consts map[string]Value) Expr {
	switch x := e.(type) {
	case Var:
		if v, ok := consts[x.Name]; ok {
			return Lit{Val: v}
		}
		return x
	case Lit:
		return x
	case TupleExpr:
		elems := make([]Expr, len(x.Elems))
		for i, s := range x.Elems {
			elems[i] = substConsts(s, consts)
		}
		return TupleExpr{Elems: elems}
	case BinOp:
		return BinOp{Op: x.Op, L: substConsts(x.L, consts), R: substConsts(x.R, consts)}
	case UnaryOp:
		return UnaryOp{Op: x.Op, E: substConsts(x.E, consts)}
	case Call:
		args := make([]Expr, len(x.Args))
		for i, s := range x.Args {
			args[i] = substConsts(s, consts)
		}
		return Call{Fn: x.Fn, Args: args}
	case Index:
		idxs := make([]Expr, len(x.Idxs))
		for i, s := range x.Idxs {
			idxs[i] = substConsts(s, consts)
		}
		return Index{Arr: substConsts(x.Arr, consts), Idxs: idxs}
	case Reduce:
		return Reduce{Monoid: x.Monoid, E: substConsts(x.E, consts)}
	case IfExpr:
		return IfExpr{
			Cond: substConsts(x.Cond, consts),
			Then: substConsts(x.Then, consts),
			Else: substConsts(x.Else, consts),
		}
	case BuildExpr:
		args := make([]Expr, len(x.Args))
		for i, s := range x.Args {
			args[i] = substConsts(s, consts)
		}
		return BuildExpr{Builder: x.Builder, Args: args, Body: substConsts(x.Body, consts)}
	case Comprehension:
		inner := consts
		var quals []Qualifier
		shadow := func(p Pattern) {
			for _, name := range PatternVars(p) {
				if _, ok := inner[name]; ok {
					if len(inner) > 0 {
						copied := make(map[string]Value, len(inner))
						for k, v := range inner {
							copied[k] = v
						}
						inner = copied
					}
					delete(inner, name)
				}
			}
		}
		for _, q := range x.Quals {
			switch qq := q.(type) {
			case Generator:
				src := substConsts(qq.Src, inner)
				shadow(qq.Pat)
				quals = append(quals, Generator{Pat: qq.Pat, Src: src})
			case LetQual:
				e2 := substConsts(qq.E, inner)
				shadow(qq.Pat)
				quals = append(quals, LetQual{Pat: qq.Pat, E: e2})
			case Guard:
				quals = append(quals, Guard{E: substConsts(qq.E, inner)})
			case GroupBy:
				var of Expr
				if qq.Of != nil {
					of = substConsts(qq.Of, inner)
				}
				shadow(qq.Pat)
				quals = append(quals, GroupBy{Pat: qq.Pat, Of: of})
			}
		}
		return Comprehension{Head: substConsts(x.Head, inner), Quals: quals}
	default:
		panic(fmt.Sprintf("comp: SubstConsts: unsupported %T", e))
	}
}

// FoldConstants simplifies literal-only arithmetic subexpressions,
// so (i+1) % n with n folded to a literal becomes (i+1) % 6 in the
// exact shape the affine-key analysis expects.
func FoldConstants(e Expr) Expr {
	return mapExpr(e, func(x Expr) Expr {
		b, ok := x.(BinOp)
		if !ok {
			return x
		}
		l, lok := b.L.(Lit)
		r, rok := b.R.(Lit)
		if !lok || !rok {
			return x
		}
		if b.Op == "until" || b.Op == "to" {
			return x // ranges stay symbolic for generators
		}
		v, err := Eval(b, nil)
		if err != nil {
			return x
		}
		_ = l
		_ = r
		return Lit{Val: v}
	})
}
