package comp

import (
	"fmt"
	"math"
)

// Env is a persistent binding environment (linked list of frames).
type Env struct {
	name string
	val  Value
	next *Env
}

// Bind returns a new environment extending e with name=val.
func (e *Env) Bind(name string, val Value) *Env {
	return &Env{name: name, val: val, next: e}
}

// Lookup resolves a variable.
func (e *Env) Lookup(name string) (Value, bool) {
	for f := e; f != nil; f = f.next {
		if f.name == name {
			return f.val, true
		}
	}
	return nil, false
}

// BindAll extends e with every entry of m (iteration order is
// irrelevant because names are distinct frames).
func (e *Env) BindAll(m map[string]Value) *Env {
	for k, v := range m {
		e = e.Bind(k, v)
	}
	return e
}

// Eval evaluates an expression in env, returning an error instead of
// panicking on calculus type errors.
func Eval(e Expr, env *Env) (v Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if rerr, ok := r.(error); ok {
				err = rerr
				return
			}
			err = fmt.Errorf("comp: eval: %v", r)
		}
	}()
	return eval(e, env), nil
}

// MustEval evaluates and panics on error (for tests and internal use).
func MustEval(e Expr, env *Env) Value {
	v, err := Eval(e, env)
	if err != nil {
		panic(err)
	}
	return v
}

func eval(e Expr, env *Env) Value {
	switch x := e.(type) {
	case Var:
		v, ok := env.Lookup(x.Name)
		if !ok {
			panic(fmt.Errorf("comp: unbound variable %q", x.Name))
		}
		return v
	case Lit:
		return x.Val
	case TupleExpr:
		t := make(Tuple, len(x.Elems))
		for i, s := range x.Elems {
			t[i] = eval(s, env)
		}
		return t
	case BinOp:
		return evalBinOp(x, env)
	case UnaryOp:
		v := eval(x.E, env)
		switch x.Op {
		case "-":
			if i, ok := v.(int64); ok {
				return -i
			}
			return -MustFloat(v)
		case "!":
			return !MustBool(v)
		}
		panic(fmt.Errorf("comp: unknown unary op %q", x.Op))
	case Call:
		return evalCall(x, env)
	case IfExpr:
		if MustBool(eval(x.Cond, env)) {
			return eval(x.Then, env)
		}
		return eval(x.Else, env)
	case Index:
		return evalIndex(x, env)
	case Reduce:
		l := asList(eval(x.E, env))
		v, err := ReduceList(x.Monoid, l)
		if err != nil {
			panic(err)
		}
		return v
	case Comprehension:
		return evalComprehension(x, env)
	case BuildExpr:
		return evalBuild(x, env)
	default:
		panic(fmt.Errorf("comp: cannot evaluate %T", e))
	}
}

func evalBinOp(x BinOp, env *Env) Value {
	// Short-circuit boolean operators.
	switch x.Op {
	case "&&":
		if !MustBool(eval(x.L, env)) {
			return false
		}
		return MustBool(eval(x.R, env))
	case "||":
		if MustBool(eval(x.L, env)) {
			return true
		}
		return MustBool(eval(x.R, env))
	}
	l := eval(x.L, env)
	r := eval(x.R, env)
	switch x.Op {
	case "until":
		return Range{Lo: MustInt(l), Hi: MustInt(r)}
	case "to":
		return Range{Lo: MustInt(l), Hi: MustInt(r) + 1}
	case "==":
		return Equal(l, r)
	case "!=":
		return !Equal(l, r)
	case "++":
		return append(append(List{}, asList(l)...), asList(r)...)
	}
	// Integer arithmetic stays integral (array indices need this).
	li, lok := l.(int64)
	ri, rok := r.(int64)
	if lok && rok {
		switch x.Op {
		case "+":
			return li + ri
		case "-":
			return li - ri
		case "*":
			return li * ri
		case "/":
			if ri == 0 {
				panic(fmt.Errorf("comp: integer division by zero"))
			}
			return li / ri
		case "%":
			if ri == 0 {
				panic(fmt.Errorf("comp: integer modulo by zero"))
			}
			return li % ri
		case "<":
			return li < ri
		case "<=":
			return li <= ri
		case ">":
			return li > ri
		case ">=":
			return li >= ri
		}
	}
	lf, rf := MustFloat(l), MustFloat(r)
	switch x.Op {
	case "+":
		return lf + rf
	case "-":
		return lf - rf
	case "*":
		return lf * rf
	case "/":
		return lf / rf
	case "%":
		return math.Mod(lf, rf)
	case "<":
		return lf < rf
	case "<=":
		return lf <= rf
	case ">":
		return lf > rf
	case ">=":
		return lf >= rf
	}
	panic(fmt.Errorf("comp: unknown binary op %q", x.Op))
}

func evalCall(x Call, env *Env) Value {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		args[i] = eval(a, env)
	}
	need := func(n int) {
		if len(args) != n {
			panic(fmt.Errorf("comp: %s expects %d args, got %d", x.Fn, n, len(args)))
		}
	}
	switch x.Fn {
	case "abs":
		need(1)
		if i, ok := args[0].(int64); ok {
			if i < 0 {
				return -i
			}
			return i
		}
		return math.Abs(MustFloat(args[0]))
	case "sqrt":
		need(1)
		return math.Sqrt(MustFloat(args[0]))
	case "exp":
		need(1)
		return math.Exp(MustFloat(args[0]))
	case "log":
		need(1)
		return math.Log(MustFloat(args[0]))
	case "pow":
		need(2)
		return math.Pow(MustFloat(args[0]), MustFloat(args[1]))
	case "min":
		need(2)
		if MustFloat(args[0]) <= MustFloat(args[1]) {
			return args[0]
		}
		return args[1]
	case "max":
		need(2)
		if MustFloat(args[0]) >= MustFloat(args[1]) {
			return args[0]
		}
		return args[1]
	case "count", "length":
		need(1)
		return int64(len(asList(args[0])))
	case "sum":
		need(1)
		v, err := ReduceList("+", asList(args[0]))
		if err != nil {
			panic(err)
		}
		return v
	case "avg":
		need(1)
		v, err := ReduceList("avg", asList(args[0]))
		if err != nil {
			panic(err)
		}
		return v
	case "float":
		need(1)
		return MustFloat(args[0])
	case "int":
		need(1)
		return MustInt(args[0])
	default:
		panic(fmt.Errorf("comp: unknown function %q", x.Fn))
	}
}

// evalIndex accesses V[e1,...,en]. Dense storages are accessed in
// O(1); association lists are scanned (the desugared generator+guard
// semantics of Section 2).
func evalIndex(x Index, env *Env) Value {
	arr := eval(x.Arr, env)
	idxs := make([]int64, len(x.Idxs))
	for i, s := range x.Idxs {
		idxs[i] = MustInt(eval(s, env))
	}
	switch a := arr.(type) {
	case MatrixStorage:
		if len(idxs) != 2 {
			panic(fmt.Errorf("comp: matrix indexing needs 2 indices, got %d", len(idxs)))
		}
		return a.At(idxs[0], idxs[1])
	case VectorStorage:
		if len(idxs) != 1 {
			panic(fmt.Errorf("comp: vector indexing needs 1 index, got %d", len(idxs)))
		}
		return a.V.At(int(idxs[0]))
	case List:
		var key Value
		if len(idxs) == 1 {
			key = idxs[0]
		} else {
			t := make(Tuple, len(idxs))
			for i, v := range idxs {
				t[i] = v
			}
			key = t
		}
		for _, e := range a {
			t := MustTuple(e)
			if Equal(t[0], key) {
				return t[1]
			}
		}
		return float64(0) // sparse default
	default:
		panic(fmt.Errorf("comp: cannot index %T", arr))
	}
}

// asList coerces list-like values (List, Range, Storage) to a List.
func asList(v Value) List {
	switch x := v.(type) {
	case List:
		return x
	case Range:
		return x.ToList()
	case Storage:
		return SparsifyAll(x)
	default:
		panic(typeErr("list", v))
	}
}

// iterSource streams the elements a generator draws from.
func iterSource(v Value, yield func(Value) bool) {
	switch x := v.(type) {
	case List:
		for _, e := range x {
			if !yield(e) {
				return
			}
		}
	case Range:
		for i := x.Lo; i < x.Hi; i++ {
			if !yield(i) {
				return
			}
		}
	case Storage:
		x.SparsifyIter(yield)
	default:
		panic(typeErr("generator source", v))
	}
}

// match attempts to bind pattern p against v, extending env. The bool
// result reports structural match; mismatching elements are filtered
// out (standard refutable-pattern comprehension semantics).
func match(p Pattern, v Value, env *Env) (*Env, bool) {
	switch pp := p.(type) {
	case PVar:
		if pp.Name == "_" {
			return env, true
		}
		return env.Bind(pp.Name, v), true
	case PTuple:
		t, ok := v.(Tuple)
		if !ok || len(t) != len(pp.Elems) {
			return env, false
		}
		for i, sub := range pp.Elems {
			env, ok = match(sub, t[i], env)
			if !ok {
				return env, false
			}
		}
		return env, true
	default:
		panic(fmt.Errorf("comp: unknown pattern %T", p))
	}
}

// binding is one evaluation context flowing through the qualifiers,
// plus the ordered list of variables bound so far (needed by group-by
// lifting).
type binding struct {
	env  *Env
	vars []string
}

func (b binding) withPat(p Pattern, v Value) (binding, bool) {
	env, ok := match(p, v, b.env)
	if !ok {
		return b, false
	}
	names := PatternVars(p)
	vars := b.vars
	for _, n := range names {
		vars = appendUnique(vars, n)
	}
	return binding{env: env, vars: vars}, true
}

func appendUnique(xs []string, x string) []string {
	for _, e := range xs {
		if e == x {
			return xs
		}
	}
	out := make([]string, len(xs), len(xs)+1)
	copy(out, xs)
	return append(out, x)
}

// evalComprehension implements the monoid comprehension semantics:
// desugaring rules (4)-(7) plus the group-by semantics of Rule 11.
func evalComprehension(c Comprehension, env *Env) Value {
	bindings := []binding{{env: env}}
	for qi, q := range c.Quals {
		switch qq := q.(type) {
		case Generator:
			var next []binding
			for _, b := range bindings {
				src := eval(qq.Src, b.env)
				iterSource(src, func(v Value) bool {
					nb, ok := b.withPat(qq.Pat, v)
					if ok {
						next = append(next, nb)
					}
					return true
				})
			}
			bindings = next
		case LetQual:
			var next []binding
			for _, b := range bindings {
				nb, ok := b.withPat(qq.Pat, eval(qq.E, b.env))
				if ok {
					next = append(next, nb)
				}
			}
			bindings = next
		case Guard:
			var next []binding
			for _, b := range bindings {
				if MustBool(eval(qq.E, b.env)) {
					next = append(next, b)
				}
			}
			bindings = next
		case GroupBy:
			bindings = evalGroupBy(qq, bindings)
		default:
			panic(fmt.Errorf("comp: unknown qualifier %T at %d", q, qi))
		}
	}
	out := make(List, 0, len(bindings))
	for _, b := range bindings {
		out = append(out, eval(c.Head, b.env))
	}
	return out
}

// evalGroupBy implements Rule 11: group the bindings by the key
// pattern; every variable bound before the group-by and not part of
// the key is lifted to the List of its values within the group.
func evalGroupBy(q GroupBy, bindings []binding) []binding {
	// group by p : e  ==  let p = e, group by p
	if q.Of != nil {
		var next []binding
		for _, b := range bindings {
			nb, ok := b.withPat(q.Pat, eval(q.Of, b.env))
			if ok {
				next = append(next, nb)
			}
		}
		bindings = next
	}
	keyVars := PatternVars(q.Pat)
	isKey := map[string]bool{}
	for _, k := range keyVars {
		isKey[k] = true
	}

	type group struct {
		keyVals []Value
		lifted  map[string]List
		vars    []string
	}
	order := []string{}
	groups := map[string]*group{}

	for _, b := range bindings {
		keyVals := make([]Value, len(keyVars))
		keyParts := make(Tuple, len(keyVars))
		for i, k := range keyVars {
			v, ok := b.env.Lookup(k)
			if !ok {
				panic(fmt.Errorf("comp: group-by key variable %q unbound", k))
			}
			keyVals[i] = v
			keyParts[i] = v
		}
		ks := KeyString(keyParts)
		g, ok := groups[ks]
		if !ok {
			g = &group{keyVals: keyVals, lifted: map[string]List{}, vars: b.vars}
			groups[ks] = g
			order = append(order, ks)
		}
		for _, name := range b.vars {
			if isKey[name] {
				continue
			}
			v, _ := b.env.Lookup(name)
			g.lifted[name] = append(g.lifted[name], v)
		}
	}

	out := make([]binding, 0, len(groups))
	for _, ks := range order {
		g := groups[ks]
		env := (*Env)(nil)
		vars := []string{}
		for _, name := range g.vars {
			if !isKey[name] {
				env = env.Bind(name, g.lifted[name])
				vars = append(vars, name)
			}
		}
		for i, k := range keyVars {
			env = env.Bind(k, g.keyVals[i])
			vars = appendUnique(vars, k)
		}
		out = append(out, binding{env: env, vars: vars})
	}
	return out
}

// evalBuild applies an array builder to its comprehension result.
// Matrix and vector builds over trailing group-by comprehensions first
// try the Section 3 destination-array translation, which accumulates
// into the output storage directly instead of a hash map.
func evalBuild(x BuildExpr, env *Env) Value {
	switch x.Builder {
	case "matrix":
		if len(x.Args) == 2 {
			if v, ok := evalDestArrayMatrix(x, env); ok {
				return v
			}
		}
	case "vector":
		if len(x.Args) == 1 {
			if v, ok := evalDestArrayVector(x, env); ok {
				return v
			}
		}
	}
	body := asList(eval(x.Body, env))
	argv := make([]int64, len(x.Args))
	for i, a := range x.Args {
		argv[i] = MustInt(eval(a, env))
	}
	switch x.Builder {
	case "matrix":
		if len(argv) != 2 {
			panic(fmt.Errorf("comp: matrix builder needs 2 args"))
		}
		return BuildMatrix(argv[0], argv[1], body)
	case "vector":
		if len(argv) != 1 {
			panic(fmt.Errorf("comp: vector builder needs 1 arg"))
		}
		return BuildVector(argv[0], body)
	case "coo":
		if len(argv) != 2 {
			panic(fmt.Errorf("comp: coo builder needs 2 args"))
		}
		return BuildCOO(argv[0], argv[1], body)
	case "list", "rdd":
		return body
	case "set":
		seen := map[string]bool{}
		out := List{}
		for _, v := range body {
			k := KeyString(v)
			if !seen[k] {
				seen[k] = true
				out = append(out, v)
			}
		}
		return out
	default:
		panic(fmt.Errorf("comp: unknown builder %q (tiled queries go through the plan package)", x.Builder))
	}
}

// EvalFast evaluates without the panic-recovery wrapper of Eval; the
// planner's inner loops call it once per element, where the deferred
// recover of Eval would dominate. Calculus type errors panic.
func EvalFast(e Expr, env *Env) Value { return eval(e, env) }

// MatchPattern exposes pattern matching for the planner: it binds p
// against v on top of env, reporting structural match.
func MatchPattern(p Pattern, v Value, env *Env) (*Env, bool) {
	return match(p, v, env)
}
