package comp

import (
	"fmt"
	"strings"
)

// The AST mirrors Figure 2 of the paper.
//
//	e ::= [ e | q ]        comprehension
//	    | ⊕/e              reduction by a monoid
//	    | v[e1,...,en]     array indexing
//	    | ...              vars, literals, tuples, binops, calls
//
//	q ::= p <- e           generator
//	    | let p = e        local declaration
//	    | e                filter
//	    | group by p [: e] group-by

// Expr is any expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Pattern is a variable or tuple pattern.
type Pattern interface {
	fmt.Stringer
	patNode()
	// Vars appends the pattern variables in order.
	Vars([]string) []string
}

// PVar is a pattern variable; "_" matches anything and binds nothing.
type PVar struct{ Name string }

// PTuple is a tuple pattern (p1, ..., pn).
type PTuple struct{ Elems []Pattern }

func (PVar) patNode()   {}
func (PTuple) patNode() {}

func (p PVar) String() string { return p.Name }
func (p PTuple) String() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Vars returns the variables bound by p, in left-to-right order.
func (p PVar) Vars(acc []string) []string {
	if p.Name == "_" {
		return acc
	}
	return append(acc, p.Name)
}

// Vars returns the variables bound by the tuple pattern.
func (p PTuple) Vars(acc []string) []string {
	for _, e := range p.Elems {
		acc = e.Vars(acc)
	}
	return acc
}

// PatternVars returns all variables bound by p.
func PatternVars(p Pattern) []string { return p.Vars(nil) }

// PV is a convenience constructor for PVar.
func PV(name string) PVar { return PVar{Name: name} }

// PT is a convenience constructor for PTuple.
func PT(elems ...Pattern) PTuple { return PTuple{Elems: elems} }

// --- Expressions ---

// Var references a bound variable.
type Var struct{ Name string }

// Lit is a literal constant (int64, float64, bool, or string).
type Lit struct{ Val Value }

// TupleExpr constructs a tuple.
type TupleExpr struct{ Elems []Expr }

// BinOp is a binary operation: + - * / % == != < <= > >= && ||.
type BinOp struct {
	Op   string
	L, R Expr
}

// UnaryOp is negation (-) or logical not (!).
type UnaryOp struct {
	Op string
	E  Expr
}

// Call invokes a builtin function by name (min, max, abs, count, ...).
type Call struct {
	Fn   string
	Args []Expr
}

// Index is array indexing sugar V[e1,...,en]; it is desugared into
// generators plus equality filters before evaluation (Section 2).
type Index struct {
	Arr  Expr
	Idxs []Expr
}

// Reduce is a total reduction ⊕/e over a list-valued expression.
type Reduce struct {
	Monoid string // +, *, max, min, &&, ||, ++, count, avg
	E      Expr
}

// Comprehension is [ Head | Quals ].
type Comprehension struct {
	Head  Expr
	Quals []Qualifier
}

// IfExpr is a conditional expression if(c, t, e).
type IfExpr struct {
	Cond, Then, Else Expr
}

func (Var) exprNode()           {}
func (Lit) exprNode()           {}
func (TupleExpr) exprNode()     {}
func (BinOp) exprNode()         {}
func (UnaryOp) exprNode()       {}
func (Call) exprNode()          {}
func (Index) exprNode()         {}
func (Reduce) exprNode()        {}
func (Comprehension) exprNode() {}
func (IfExpr) exprNode()        {}

// --- Qualifiers ---

// Qualifier is one element of a comprehension's qualifier list.
type Qualifier interface {
	fmt.Stringer
	qualNode()
}

// Generator is p <- e.
type Generator struct {
	Pat Pattern
	Src Expr
}

// LetQual is let p = e.
type LetQual struct {
	Pat Pattern
	E   Expr
}

// Guard is a boolean filter expression.
type Guard struct{ E Expr }

// GroupBy is group by p [: e]. When Of is nil the group-by key is the
// current value of the pattern variables in Pat; otherwise it is
// syntactic sugar for let Pat = Of, group by Pat.
type GroupBy struct {
	Pat Pattern
	Of  Expr
}

func (Generator) qualNode() {}
func (LetQual) qualNode()   {}
func (Guard) qualNode()     {}
func (GroupBy) qualNode()   {}

// --- Printing ---

func (e Var) String() string { return e.Name }
func (e Lit) String() string { return Render(e.Val) }
func (e TupleExpr) String() string {
	parts := make([]string, len(e.Elems))
	for i, x := range e.Elems {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
func (e BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}
func (e UnaryOp) String() string { return fmt.Sprintf("%s%s", e.Op, e.E) }
func (e Call) String() string {
	parts := make([]string, len(e.Args))
	for i, x := range e.Args {
		parts[i] = x.String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(parts, ", "))
}
func (e Index) String() string {
	parts := make([]string, len(e.Idxs))
	for i, x := range e.Idxs {
		parts[i] = x.String()
	}
	return fmt.Sprintf("%s[%s]", e.Arr, strings.Join(parts, ", "))
}
func (e Reduce) String() string { return fmt.Sprintf("%s/%s", e.Monoid, e.E) }
func (e Comprehension) String() string {
	quals := make([]string, len(e.Quals))
	for i, q := range e.Quals {
		quals[i] = q.String()
	}
	return fmt.Sprintf("[ %s | %s ]", e.Head, strings.Join(quals, ", "))
}
func (e IfExpr) String() string {
	return fmt.Sprintf("if(%s, %s, %s)", e.Cond, e.Then, e.Else)
}

func (q Generator) String() string { return fmt.Sprintf("%s <- %s", q.Pat, q.Src) }
func (q LetQual) String() string   { return fmt.Sprintf("let %s = %s", q.Pat, q.E) }
func (q Guard) String() string     { return q.E.String() }
func (q GroupBy) String() string {
	if q.Of != nil {
		return fmt.Sprintf("group by %s: %s", q.Pat, q.Of)
	}
	return fmt.Sprintf("group by %s", q.Pat)
}

// FreeVars returns the free variables of e given the set of bound
// names. It is the `vars` function used by the join-detection Rule 14.
func FreeVars(e Expr) map[string]bool {
	out := map[string]bool{}
	collectFree(e, map[string]bool{}, out)
	return out
}

func collectFree(e Expr, bound map[string]bool, out map[string]bool) {
	switch x := e.(type) {
	case Var:
		if !bound[x.Name] {
			out[x.Name] = true
		}
	case Lit:
	case TupleExpr:
		for _, s := range x.Elems {
			collectFree(s, bound, out)
		}
	case BinOp:
		collectFree(x.L, bound, out)
		collectFree(x.R, bound, out)
	case UnaryOp:
		collectFree(x.E, bound, out)
	case Call:
		for _, s := range x.Args {
			collectFree(s, bound, out)
		}
	case Index:
		collectFree(x.Arr, bound, out)
		for _, s := range x.Idxs {
			collectFree(s, bound, out)
		}
	case Reduce:
		collectFree(x.E, bound, out)
	case IfExpr:
		collectFree(x.Cond, bound, out)
		collectFree(x.Then, bound, out)
		collectFree(x.Else, bound, out)
	case Comprehension:
		inner := copyBound(bound)
		for _, q := range x.Quals {
			switch qq := q.(type) {
			case Generator:
				collectFree(qq.Src, inner, out)
				bindPat(qq.Pat, inner)
			case LetQual:
				collectFree(qq.E, inner, out)
				bindPat(qq.Pat, inner)
			case Guard:
				collectFree(qq.E, inner, out)
			case GroupBy:
				if qq.Of != nil {
					collectFree(qq.Of, inner, out)
				}
				bindPat(qq.Pat, inner)
			}
		}
		collectFree(x.Head, inner, out)
	default:
		panic(fmt.Sprintf("comp: unknown expr %T", e))
	}
}

func copyBound(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func bindPat(p Pattern, bound map[string]bool) {
	for _, v := range PatternVars(p) {
		bound[v] = true
	}
}
