package comp

import (
	"testing"

	"repro/internal/linalg"
)

// The Section 3 destination-array path must agree with the generic
// hash-map group-by on the paper's matmul query.
func TestDestArrayMatMulMatchesGeneric(t *testing.T) {
	a := linalg.RandDense(8, 6, 0, 2, 101)
	b := linalg.RandDense(6, 7, 0, 2, 102)
	env := env0(map[string]Value{
		"M": MatrixStorage{M: a}, "N": MatrixStorage{M: b},
	})
	q := matMulQuery(8, 7)
	got := MustEval(q, env).(MatrixStorage)
	if !got.M.EqualApprox(linalg.Mul(a, b), 1e-9) {
		t.Fatal("dest-array matmul mismatch")
	}
}

func TestMatchDestArrayShapes(t *testing.T) {
	// Matching shape.
	q := matMulQuery(4, 4).(BuildExpr)
	if _, ok := matchDestArray(q.Body.(Comprehension)); !ok {
		t.Fatal("matmul should match the destination-array shape")
	}
	// Key not equal to group-by vars: no match.
	c := Comprehension{
		Head: TupleExpr{[]Expr{
			TupleExpr{[]Expr{Var{"j"}, Var{"i"}}}, // swapped
			Reduce{Monoid: "+", E: Var{"v"}},
		}},
		Quals: []Qualifier{
			Generator{Pat: PT(PT(PV("i"), PV("j")), PV("v")), Src: Var{"M"}},
			GroupBy{Pat: PT(PV("i"), PV("j"))},
		},
	}
	if _, ok := matchDestArray(c); ok {
		t.Fatal("swapped key must not match")
	}
	// Raw lifted variable: no match.
	c2 := Comprehension{
		Head: TupleExpr{[]Expr{Var{"i"}, Var{"v"}}},
		Quals: []Qualifier{
			Generator{Pat: PT(PV("i"), PV("v")), Src: Var{"V"}},
			GroupBy{Pat: PV("i")},
		},
	}
	if _, ok := matchDestArray(c2); ok {
		t.Fatal("raw lifted var must not match")
	}
}

// Vector build with multiple aggregations through destination arrays.
func TestDestArrayVectorMultipleAggs(t *testing.T) {
	m := linalg.RandDense(5, 4, 1, 9, 103)
	env := env0(map[string]Value{"M": MatrixStorage{M: m}})
	// mean per row: (+/a) / count(a)
	q := BuildExpr{
		Builder: "vector", Args: []Expr{Lit{int64(5)}},
		Body: Comprehension{
			Head: TupleExpr{[]Expr{
				Var{"i"},
				BinOp{"/", Reduce{Monoid: "+", E: Var{"a"}},
					Call{Fn: "float", Args: []Expr{Call{Fn: "count", Args: []Expr{Var{"a"}}}}}},
			}},
			Quals: []Qualifier{
				Generator{Pat: PT(PT(PV("i"), PV("j")), PV("a")), Src: Var{"M"}},
				GroupBy{Pat: PV("i")},
			},
		},
	}
	got := MustEval(q, env).(VectorStorage)
	for i := 0; i < 5; i++ {
		want := 0.0
		for j := 0; j < 4; j++ {
			want += m.At(i, j)
		}
		want /= 4
		if d := got.V.At(i) - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("row %d mean %v want %v", i, got.V.At(i), want)
		}
	}
}

// Out-of-bounds keys are dropped (the builder's inequality guards).
func TestDestArrayBounds(t *testing.T) {
	// Keys i+3 overflow a size-4 vector for i >= 1.
	q := BuildExpr{
		Builder: "vector", Args: []Expr{Lit{int64(4)}},
		Body: Comprehension{
			Head: TupleExpr{[]Expr{Var{"k"}, Reduce{Monoid: "+", E: Var{"v"}}}},
			Quals: []Qualifier{
				Generator{Pat: PT(PV("i"), PV("v")), Src: Var{"V"}},
				LetQual{Pat: PV("k"), E: BinOp{"+", Var{"i"}, Lit{int64(3)}}},
				GroupBy{Pat: PV("k")},
			},
		},
	}
	v := VectorStorage{V: linalg.NewVectorFrom([]float64{10, 20, 30})}
	got := MustEval(q, env0(map[string]Value{"V": v})).(VectorStorage)
	if !got.V.Equal(linalg.NewVectorFrom([]float64{0, 0, 0, 10})) {
		t.Fatalf("bounds handling %v", got.V.Data)
	}
}

// Benchmarks: the Section 3 claim — destination arrays vs the generic
// hash-map group-by for local matrix multiplication.
func BenchmarkLocalMatMulDestArray(b *testing.B) {
	a := linalg.RandDense(16, 16, 0, 1, 1)
	c := linalg.RandDense(16, 16, 0, 1, 2)
	env := env0(map[string]Value{
		"M": MatrixStorage{M: a}, "N": MatrixStorage{M: c},
	})
	q := matMulQuery(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustEval(q, env)
	}
}

func BenchmarkLocalMatMulHashMap(b *testing.B) {
	a := linalg.RandDense(16, 16, 0, 1, 1)
	c := linalg.RandDense(16, 16, 0, 1, 2)
	env := env0(map[string]Value{
		"M": MatrixStorage{M: a}, "N": MatrixStorage{M: c},
	})
	// Same query, but the rdd builder bypasses the dest-array path and
	// uses the generic group-by (then we discard the list).
	inner := matMulQuery(16, 16).(BuildExpr)
	q := BuildExpr{Builder: "list", Body: inner.Body}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustEval(q, env)
	}
}
