package comp

import (
	"fmt"
	"math"
)

// Monoid is an associative binary operation with identity, the ⊕ of the
// paper's reductions ⊕/e and the combiner handed to reduceByKey
// (Rule 13). Product monoids (footnote 1 in the paper) combine several
// aggregations into one pass.
type Monoid struct {
	Name string
	// Zero returns the identity 1⊕.
	Zero func() Value
	// Op combines two values.
	Op func(a, b Value) Value
	// Commutative reports whether the monoid commutes; only
	// commutative monoids may be used with reduceByKey.
	Commutative bool
}

// LookupMonoid resolves the monoid named in a reduction. Supported:
// +, *, min, max, &&, ||, ++ (list concat), count, avg.
func LookupMonoid(name string) (Monoid, error) {
	m, ok := monoids[name]
	if !ok {
		return Monoid{}, fmt.Errorf("comp: unknown monoid %q", name)
	}
	return m, nil
}

var monoids = map[string]Monoid{
	"+": {
		Name: "+", Commutative: true,
		Zero: func() Value { return float64(0) },
		Op: func(a, b Value) Value {
			if ai, ok := a.(int64); ok {
				if bi, ok := b.(int64); ok {
					return ai + bi
				}
			}
			return MustFloat(a) + MustFloat(b)
		},
	},
	"*": {
		Name: "*", Commutative: true,
		Zero: func() Value { return float64(1) },
		Op: func(a, b Value) Value {
			if ai, ok := a.(int64); ok {
				if bi, ok := b.(int64); ok {
					return ai * bi
				}
			}
			return MustFloat(a) * MustFloat(b)
		},
	},
	"min": {
		Name: "min", Commutative: true,
		Zero: func() Value { return math.Inf(1) },
		Op: func(a, b Value) Value {
			if MustFloat(a) <= MustFloat(b) {
				return a
			}
			return b
		},
	},
	"max": {
		Name: "max", Commutative: true,
		Zero: func() Value { return math.Inf(-1) },
		Op: func(a, b Value) Value {
			if MustFloat(a) >= MustFloat(b) {
				return a
			}
			return b
		},
	},
	"&&": {
		Name: "&&", Commutative: true,
		Zero: func() Value { return true },
		Op:   func(a, b Value) Value { return MustBool(a) && MustBool(b) },
	},
	"||": {
		Name: "||", Commutative: true,
		Zero: func() Value { return false },
		Op:   func(a, b Value) Value { return MustBool(a) || MustBool(b) },
	},
	"++": {
		Name: "++", Commutative: false,
		Zero: func() Value { return List(nil) },
		Op: func(a, b Value) Value {
			la, lb := MustList(a), MustList(b)
			out := make(List, 0, len(la)+len(lb))
			out = append(out, la...)
			out = append(out, lb...)
			return out
		},
	},
	"count": {
		Name: "count", Commutative: true,
		Zero: func() Value { return int64(0) },
		Op:   func(a, b Value) Value { return MustInt(a) + MustInt(b) },
	},
	"avg": {
		Name: "avg", Commutative: true,
		// avg accumulates (sum, count) tuples; Finalize divides.
		Zero: func() Value { return T(float64(0), int64(0)) },
		Op: func(a, b Value) Value {
			ta, tb := MustTuple(a), MustTuple(b)
			return T(MustFloat(ta[0])+MustFloat(tb[0]), MustInt(ta[1])+MustInt(tb[1]))
		},
	},
}

// MonoidLift maps one element into the accumulator domain of the named
// monoid: count maps anything to 1, avg maps x to (x, 1), others are
// the identity.
func MonoidLift(name string, v Value) Value {
	switch name {
	case "count":
		return int64(1)
	case "avg":
		return T(MustFloat(v), int64(1))
	case "++":
		if _, ok := v.(List); ok {
			return v
		}
		return L(v)
	default:
		return v
	}
}

// MonoidFinalize maps the accumulator of the named monoid to its result
// value: avg divides sum by count, others are the identity.
func MonoidFinalize(name string, v Value) Value {
	if name == "avg" {
		t := MustTuple(v)
		n := MustInt(t[1])
		if n == 0 {
			return float64(0)
		}
		return MustFloat(t[0]) / float64(n)
	}
	return v
}

// ReduceList folds a list with the named monoid, applying lift and
// finalize; ⊕/e over a materialized list.
func ReduceList(name string, l List) (Value, error) {
	m, err := LookupMonoid(name)
	if err != nil {
		return nil, err
	}
	acc := m.Zero()
	for _, v := range l {
		acc = m.Op(acc, MonoidLift(name, v))
	}
	return MonoidFinalize(name, acc), nil
}

// ProductMonoid builds the component-wise product ⊕1 x ... x ⊕n over
// tuple accumulators (the ⊗ of Rule 12).
func ProductMonoid(ms []Monoid) Monoid {
	comm := true
	for _, m := range ms {
		comm = comm && m.Commutative
	}
	return Monoid{
		Name:        "product",
		Commutative: comm,
		Zero: func() Value {
			t := make(Tuple, len(ms))
			for i, m := range ms {
				t[i] = m.Zero()
			}
			return t
		},
		Op: func(a, b Value) Value {
			ta, tb := MustTuple(a), MustTuple(b)
			t := make(Tuple, len(ms))
			for i, m := range ms {
				t[i] = m.Op(ta[i], tb[i])
			}
			return t
		},
	}
}
