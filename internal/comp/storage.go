package comp

import (
	"fmt"

	"repro/internal/linalg"
)

// Storage is a concrete array storage structure. Its Sparsify method is
// the paper's sparsifier: it presents the storage as an association
// list mapping indices to values. Generators over a Storage iterate
// the sparsified view without materializing it.
type Storage interface {
	// SparsifyIter streams the association-list entries
	// Tuple{index, value}; returning false stops the iteration.
	SparsifyIter(yield func(entry Value) bool)
	// SparsifyLen returns the number of entries that SparsifyIter
	// yields (for pre-sizing).
	SparsifyLen() int
}

// MatrixStorage stores a matrix in row-major order in a flat vector —
// the (n, m, V) triple of Section 2. Its sparsified view is
// List[((i,j), V(i*m+j))].
type MatrixStorage struct{ M *linalg.Dense }

// SparsifyIter implements the matrix sparsifier of Section 2:
// [ ((i,j), A(i*n+j)) | let (n,m,A) = S, i <- 0 until n, j <- 0 until m ].
func (s MatrixStorage) SparsifyIter(yield func(Value) bool) {
	for i := 0; i < s.M.Rows; i++ {
		for j := 0; j < s.M.Cols; j++ {
			if !yield(T(T(int64(i), int64(j)), s.M.At(i, j))) {
				return
			}
		}
	}
}

// SparsifyLen returns rows*cols.
func (s MatrixStorage) SparsifyLen() int { return s.M.Rows * s.M.Cols }

// At provides O(1) access for desugared array indexing.
func (s MatrixStorage) At(i, j int64) Value { return s.M.At(int(i), int(j)) }

func (s MatrixStorage) String() string { return fmt.Sprintf("matrix(%dx%d)", s.M.Rows, s.M.Cols) }

// VectorStorage stores a vector densely. Its sparsified view is
// List[(i, V(i))].
type VectorStorage struct{ V *linalg.Vector }

// SparsifyIter implements the vector sparsifier of Section 2.
func (s VectorStorage) SparsifyIter(yield func(Value) bool) {
	for i, v := range s.V.Data {
		if !yield(T(int64(i), v)) {
			return
		}
	}
}

// SparsifyLen returns the vector length.
func (s VectorStorage) SparsifyLen() int { return s.V.Len() }

func (s VectorStorage) String() string { return fmt.Sprintf("vector(%d)", s.V.Len()) }

// COOStorage stores a sparse matrix in coordinate format; its
// sparsified view contains only the stored entries.
type COOStorage struct{ C *linalg.COO }

// SparsifyIter yields the stored triplets.
func (s COOStorage) SparsifyIter(yield func(Value) bool) {
	for _, e := range s.C.Entries {
		if !yield(T(T(int64(e.I), int64(e.J)), e.V)) {
			return
		}
	}
}

// SparsifyLen returns the number of stored entries.
func (s COOStorage) SparsifyLen() int { return s.C.NNZ() }

func (s COOStorage) String() string {
	return fmt.Sprintf("coo(%dx%d,nnz=%d)", s.C.Rows, s.C.Cols, s.C.NNZ())
}

// BuildMatrix is the matrix(n,m) builder of Section 2: it fills a
// row-major dense matrix from an association list, ignoring
// out-of-bounds indices (the inequality guards of the paper's builder).
func BuildMatrix(n, m int64, entries List) MatrixStorage {
	d := linalg.NewDense(int(n), int(m))
	for _, e := range entries {
		t := MustTuple(e)
		idx := MustTuple(t[0])
		i, j := MustInt(idx[0]), MustInt(idx[1])
		if i >= 0 && i < n && j >= 0 && j < m {
			d.Set(int(i), int(j), MustFloat(t[1]))
		}
	}
	return MatrixStorage{M: d}
}

// BuildVector is the vector(n) builder.
func BuildVector(n int64, entries List) VectorStorage {
	v := linalg.NewVector(int(n))
	for _, e := range entries {
		t := MustTuple(e)
		i := MustInt(t[0])
		if i >= 0 && i < n {
			v.Set(int(i), MustFloat(t[1]))
		}
	}
	return VectorStorage{V: v}
}

// BuildCOO builds a coordinate-format sparse matrix from an
// association list.
func BuildCOO(n, m int64, entries List) COOStorage {
	c := linalg.NewCOO(int(n), int(m))
	for _, e := range entries {
		t := MustTuple(e)
		idx := MustTuple(t[0])
		i, j := MustInt(idx[0]), MustInt(idx[1])
		if i >= 0 && i < n && j >= 0 && j < m {
			c.Append(int(i), int(j), MustFloat(t[1]))
		}
	}
	return COOStorage{C: c}
}

// SparsifyAll materializes the full association list of a storage.
func SparsifyAll(s Storage) List {
	out := make(List, 0, s.SparsifyLen())
	s.SparsifyIter(func(e Value) bool {
		out = append(out, e)
		return true
	})
	return out
}
