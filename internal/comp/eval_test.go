package comp

import (
	"testing"

	"repro/internal/linalg"
)

// env0 returns an environment binding the given names.
func env0(m map[string]Value) *Env {
	var e *Env
	for k, v := range m {
		e = e.Bind(k, v)
	}
	return e
}

func TestEvalLiteralsAndArith(t *testing.T) {
	cases := []struct {
		e    Expr
		want Value
	}{
		{Lit{int64(3)}, int64(3)},
		{BinOp{"+", Lit{int64(2)}, Lit{int64(3)}}, int64(5)},
		{BinOp{"*", Lit{2.0}, Lit{int64(3)}}, 6.0},
		{BinOp{"/", Lit{int64(7)}, Lit{int64(2)}}, int64(3)},
		{BinOp{"%", Lit{int64(7)}, Lit{int64(2)}}, int64(1)},
		{BinOp{"-", Lit{int64(1)}, Lit{int64(5)}}, int64(-4)},
		{BinOp{"<", Lit{int64(1)}, Lit{int64(2)}}, true},
		{BinOp{">=", Lit{2.5}, Lit{2.5}}, true},
		{Lit{true}, true}, // placeholder, replaced below with tuple equality
		{UnaryOp{"-", Lit{int64(4)}}, int64(-4)},
		{UnaryOp{"!", Lit{false}}, true},
		{IfExpr{Lit{true}, Lit{int64(1)}, Lit{int64(2)}}, int64(1)},
		{IfExpr{Lit{false}, Lit{int64(1)}, Lit{int64(2)}}, int64(2)},
	}
	// fix the tuple-equality case
	cases[8].e = BinOp{"==", TupleExpr{[]Expr{Lit{int64(1)}, Lit{int64(2)}}}, TupleExpr{[]Expr{Lit{int64(1)}, Lit{int64(2)}}}}
	cases[8].want = true
	for _, c := range cases {
		got := MustEval(c.e, nil)
		if !Equal(got, c.want) {
			t.Fatalf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// (false && (1/0 == 0)) must not evaluate the division.
	e := BinOp{"&&", Lit{false}, BinOp{"==", BinOp{"/", Lit{int64(1)}, Lit{int64(0)}}, Lit{int64(0)}}}
	if MustEval(e, nil) != false {
		t.Fatal("short-circuit &&")
	}
	e2 := BinOp{"||", Lit{true}, BinOp{"==", BinOp{"/", Lit{int64(1)}, Lit{int64(0)}}, Lit{int64(0)}}}
	if MustEval(e2, nil) != true {
		t.Fatal("short-circuit ||")
	}
}

func TestEvalUnboundVarErrors(t *testing.T) {
	if _, err := Eval(Var{"nope"}, nil); err == nil {
		t.Fatal("expected unbound-variable error")
	}
}

func TestEvalRangeOps(t *testing.T) {
	r := MustEval(BinOp{"until", Lit{int64(0)}, Lit{int64(3)}}, nil).(Range)
	if r.Lo != 0 || r.Hi != 3 || r.Len() != 3 {
		t.Fatalf("until %+v", r)
	}
	r2 := MustEval(BinOp{"to", Lit{int64(1)}, Lit{int64(3)}}, nil).(Range)
	if r2.Hi != 4 {
		t.Fatalf("to %+v", r2)
	}
	l := r.ToList()
	if len(l) != 3 || l[2] != int64(2) {
		t.Fatalf("range list %v", l)
	}
}

func TestSimpleComprehension(t *testing.T) {
	// [ i*2 | i <- 0 until 5, i % 2 == 0 ]  =  [0, 4, 8]
	c := Comprehension{
		Head: BinOp{"*", Var{"i"}, Lit{int64(2)}},
		Quals: []Qualifier{
			Generator{Pat: PV("i"), Src: BinOp{"until", Lit{int64(0)}, Lit{int64(5)}}},
			Guard{E: BinOp{"==", BinOp{"%", Var{"i"}, Lit{int64(2)}}, Lit{int64(0)}}},
		},
	}
	got := MustEval(c, nil).(List)
	want := L(int64(0), int64(4), int64(8))
	if !Equal(got, want) {
		t.Fatalf("got %v", Render(got))
	}
}

func TestComprehensionLetAndTuplePattern(t *testing.T) {
	// [ (x, y) | p <- pairs, let (x, y) = p ]
	pairs := L(T(int64(1), int64(2)), T(int64(3), int64(4)))
	c := Comprehension{
		Head: TupleExpr{[]Expr{Var{"y"}, Var{"x"}}},
		Quals: []Qualifier{
			Generator{Pat: PV("p"), Src: Var{"pairs"}},
			LetQual{Pat: PT(PV("x"), PV("y")), E: Var{"p"}},
		},
	}
	got := MustEval(c, env0(map[string]Value{"pairs": pairs})).(List)
	want := L(T(int64(2), int64(1)), T(int64(4), int64(3)))
	if !Equal(got, want) {
		t.Fatalf("got %v", Render(got))
	}
}

func TestPatternMismatchFilters(t *testing.T) {
	// Elements that do not match the tuple pattern are skipped.
	src := L(T(int64(1), int64(2)), int64(9), T(int64(3), int64(4)))
	c := Comprehension{
		Head: Var{"a"},
		Quals: []Qualifier{
			Generator{Pat: PT(PV("a"), PV("_")), Src: Var{"src"}},
		},
	}
	got := MustEval(c, env0(map[string]Value{"src": src})).(List)
	if !Equal(got, L(int64(1), int64(3))) {
		t.Fatalf("got %v", Render(got))
	}
}

// Figure 1 / Query (1): V = vector(n)[ (i, +/m) | ((i,j),m) <- M, group by i ]
func TestRowSumsComprehension(t *testing.T) {
	m := linalg.NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	q := BuildExpr{
		Builder: "vector", Args: []Expr{Lit{int64(2)}},
		Body: Comprehension{
			Head: TupleExpr{[]Expr{Var{"i"}, Reduce{Monoid: "+", E: Var{"m"}}}},
			Quals: []Qualifier{
				Generator{Pat: PT(PT(PV("i"), PV("j")), PV("m")), Src: Var{"M"}},
				GroupBy{Pat: PV("i")},
			},
		},
	}
	got := MustEval(q, env0(map[string]Value{"M": MatrixStorage{M: m}})).(VectorStorage)
	if !got.V.Equal(linalg.NewVectorFrom([]float64{6, 15})) {
		t.Fatalf("row sums %v", got.V.Data)
	}
}

// Query (8): matrix addition via a join-like comprehension.
func TestMatrixAdditionComprehension(t *testing.T) {
	a := linalg.RandDense(3, 4, 0, 10, 1)
	b := linalg.RandDense(3, 4, 0, 10, 2)
	q := BuildExpr{
		Builder: "matrix", Args: []Expr{Lit{int64(3)}, Lit{int64(4)}},
		Body: Comprehension{
			Head: TupleExpr{[]Expr{
				TupleExpr{[]Expr{Var{"i"}, Var{"j"}}},
				BinOp{"+", Var{"a"}, Var{"b"}},
			}},
			Quals: []Qualifier{
				Generator{Pat: PT(PT(PV("i"), PV("j")), PV("a")), Src: Var{"M"}},
				Generator{Pat: PT(PT(PV("ii"), PV("jj")), PV("b")), Src: Var{"N"}},
				Guard{E: BinOp{"==", Var{"ii"}, Var{"i"}}},
				Guard{E: BinOp{"==", Var{"jj"}, Var{"j"}}},
			},
		},
	}
	got := MustEval(q, env0(map[string]Value{
		"M": MatrixStorage{M: a}, "N": MatrixStorage{M: b},
	})).(MatrixStorage)
	if !got.M.EqualApprox(linalg.AddDense(a, b), 1e-12) {
		t.Fatal("matrix addition mismatch")
	}
}

// Query (9): matrix multiplication with group-by.
func TestMatrixMultiplicationComprehension(t *testing.T) {
	a := linalg.RandDense(3, 4, 0, 2, 3)
	b := linalg.RandDense(4, 5, 0, 2, 4)
	q := matMulQuery(3, 5)
	got := MustEval(q, env0(map[string]Value{
		"M": MatrixStorage{M: a}, "N": MatrixStorage{M: b},
	})).(MatrixStorage)
	if !got.M.EqualApprox(linalg.Mul(a, b), 1e-9) {
		t.Fatalf("matmul mismatch: %g", got.M.MaxAbsDiff(linalg.Mul(a, b)))
	}
}

// matMulQuery builds Query (9) for an n x m result.
func matMulQuery(n, m int64) Expr {
	return BuildExpr{
		Builder: "matrix", Args: []Expr{Lit{n}, Lit{m}},
		Body: Comprehension{
			Head: TupleExpr{[]Expr{
				TupleExpr{[]Expr{Var{"i"}, Var{"j"}}},
				Reduce{Monoid: "+", E: Var{"v"}},
			}},
			Quals: []Qualifier{
				Generator{Pat: PT(PT(PV("i"), PV("k")), PV("a")), Src: Var{"M"}},
				Generator{Pat: PT(PT(PV("kk"), PV("j")), PV("b")), Src: Var{"N"}},
				Guard{E: BinOp{"==", Var{"kk"}, Var{"k"}}},
				LetQual{Pat: PV("v"), E: BinOp{"*", Var{"a"}, Var{"b"}}},
				GroupBy{Pat: PT(PV("i"), PV("j"))},
			},
		},
	}
}

// Matrix smoothing from Section 3, including boundary cases.
func TestMatrixSmoothingComprehension(t *testing.T) {
	m := linalg.NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	q := BuildExpr{
		Builder: "matrix", Args: []Expr{Lit{int64(2)}, Lit{int64(2)}},
		Body: Comprehension{
			Head: TupleExpr{[]Expr{
				TupleExpr{[]Expr{Var{"ii"}, Var{"jj"}}},
				BinOp{"/", Reduce{Monoid: "+", E: Var{"a"}}, Call{Fn: "float", Args: []Expr{Call{Fn: "count", Args: []Expr{Var{"a"}}}}}},
			}},
			Quals: []Qualifier{
				Generator{Pat: PT(PT(PV("i"), PV("j")), PV("a")), Src: Var{"M"}},
				Generator{Pat: PV("ii"), Src: BinOp{"to", BinOp{"-", Var{"i"}, Lit{int64(1)}}, BinOp{"+", Var{"i"}, Lit{int64(1)}}}},
				Generator{Pat: PV("jj"), Src: BinOp{"to", BinOp{"-", Var{"j"}, Lit{int64(1)}}, BinOp{"+", Var{"j"}, Lit{int64(1)}}}},
				Guard{E: BinOp{">=", Var{"ii"}, Lit{int64(0)}}},
				Guard{E: BinOp{"<", Var{"ii"}, Lit{int64(2)}}},
				Guard{E: BinOp{">=", Var{"jj"}, Lit{int64(0)}}},
				Guard{E: BinOp{"<", Var{"jj"}, Lit{int64(2)}}},
				GroupBy{Pat: PT(PV("ii"), PV("jj"))},
			},
		},
	}
	got := MustEval(q, env0(map[string]Value{"M": MatrixStorage{M: m}})).(MatrixStorage)
	// Every output cell averages all 4 values (every input is within
	// distance 1 of every cell in a 2x2 matrix): 2.5 everywhere.
	want := linalg.NewDense(2, 2)
	want.Fill(2.5)
	if !got.M.EqualApprox(want, 1e-12) {
		t.Fatalf("smoothing %v", got.M)
	}
}

// The total-aggregation is-sorted example from Section 2.
func TestIsSortedComprehension(t *testing.T) {
	q := Reduce{Monoid: "&&", E: Comprehension{
		Head: BinOp{"<=", Var{"v"}, Var{"w"}},
		Quals: []Qualifier{
			Generator{Pat: PT(PV("i"), PV("v")), Src: Var{"V"}},
			Generator{Pat: PT(PV("j"), PV("w")), Src: Var{"V"}},
			Guard{E: BinOp{"==", Var{"j"}, BinOp{"+", Var{"i"}, Lit{int64(1)}}}},
		},
	}}
	sorted := VectorStorage{V: linalg.NewVectorFrom([]float64{1, 2, 2, 5})}
	unsorted := VectorStorage{V: linalg.NewVectorFrom([]float64{1, 3, 2})}
	if MustEval(q, env0(map[string]Value{"V": sorted})) != true {
		t.Fatal("sorted misreported")
	}
	if MustEval(q, env0(map[string]Value{"V": unsorted})) != false {
		t.Fatal("unsorted misreported")
	}
}

// Matrix transpose via comprehension: storage round trip.
func TestTransposeComprehension(t *testing.T) {
	m := linalg.RandDense(3, 5, 0, 1, 5)
	q := BuildExpr{
		Builder: "matrix", Args: []Expr{Lit{int64(5)}, Lit{int64(3)}},
		Body: Comprehension{
			Head: TupleExpr{[]Expr{
				TupleExpr{[]Expr{Var{"j"}, Var{"i"}}},
				Var{"v"},
			}},
			Quals: []Qualifier{
				Generator{Pat: PT(PT(PV("i"), PV("j")), PV("v")), Src: Var{"M"}},
			},
		},
	}
	got := MustEval(q, env0(map[string]Value{"M": MatrixStorage{M: m}})).(MatrixStorage)
	if !got.M.Equal(m.Transpose()) {
		t.Fatal("transpose mismatch")
	}
}

// Array-indexing expression evaluated directly against dense storage.
func TestEvalIndexDirect(t *testing.T) {
	m := linalg.NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	env := env0(map[string]Value{
		"M": MatrixStorage{M: m},
		"V": VectorStorage{V: linalg.NewVectorFrom([]float64{7, 8})},
		"L": L(T(int64(0), 5.0), T(int64(1), 6.0)),
	})
	if got := MustEval(Index{Arr: Var{"M"}, Idxs: []Expr{Lit{int64(1)}, Lit{int64(0)}}}, env); got != 3.0 {
		t.Fatalf("M[1,0] = %v", got)
	}
	if got := MustEval(Index{Arr: Var{"V"}, Idxs: []Expr{Lit{int64(1)}}}, env); got != 8.0 {
		t.Fatalf("V[1] = %v", got)
	}
	if got := MustEval(Index{Arr: Var{"L"}, Idxs: []Expr{Lit{int64(1)}}}, env); got != 6.0 {
		t.Fatalf("L[1] = %v", got)
	}
	// Missing key in an assoc list defaults to 0 (sparse semantics).
	if got := MustEval(Index{Arr: Var{"L"}, Idxs: []Expr{Lit{int64(9)}}}, env); got != 0.0 {
		t.Fatalf("L[9] = %v", got)
	}
}

func TestGroupByOfSugar(t *testing.T) {
	// [ (k, +/v) | (i,v) <- V, group by k: i % 2 ]
	q := Comprehension{
		Head: TupleExpr{[]Expr{Var{"k"}, Reduce{Monoid: "+", E: Var{"v"}}}},
		Quals: []Qualifier{
			Generator{Pat: PT(PV("i"), PV("v")), Src: Var{"V"}},
			GroupBy{Pat: PV("k"), Of: BinOp{"%", Var{"i"}, Lit{int64(2)}}},
		},
	}
	v := VectorStorage{V: linalg.NewVectorFrom([]float64{1, 10, 2, 20, 3})}
	got := SortByKey(MustEval(q, env0(map[string]Value{"V": v})).(List))
	want := L(T(int64(0), 6.0), T(int64(1), 30.0))
	if !Equal(got, want) {
		t.Fatalf("got %v", Render(got))
	}
}

func TestMultipleAggregationsAfterGroupBy(t *testing.T) {
	// [ (k, +/v, count(v), max/v) | (i,v) <- V, group by k: i % 2 ]
	q := Comprehension{
		Head: TupleExpr{[]Expr{
			Var{"k"},
			Reduce{Monoid: "+", E: Var{"v"}},
			Call{Fn: "count", Args: []Expr{Var{"v"}}},
			Reduce{Monoid: "max", E: Var{"v"}},
		}},
		Quals: []Qualifier{
			Generator{Pat: PT(PV("i"), PV("v")), Src: Var{"V"}},
			GroupBy{Pat: PV("k"), Of: BinOp{"%", Var{"i"}, Lit{int64(2)}}},
		},
	}
	v := VectorStorage{V: linalg.NewVectorFrom([]float64{1, 10, 2, 20, 3})}
	got := MustEval(q, env0(map[string]Value{"V": v})).(List)
	byKey := map[string]Tuple{}
	for _, e := range got {
		tup := MustTuple(e)
		byKey[KeyString(tup[0])] = tup
	}
	if !Equal(byKey["0"], T(int64(0), 6.0, int64(3), 3.0)) {
		t.Fatalf("group 0: %v", Render(byKey["0"]))
	}
	if !Equal(byKey["1"], T(int64(1), 30.0, int64(2), 20.0)) {
		t.Fatalf("group 1: %v", Render(byKey["1"]))
	}
}

func TestBuilderBoundsFiltering(t *testing.T) {
	// Out-of-range entries are dropped by the builder, as in the
	// paper's matrix builder inequality guards.
	entries := L(
		T(T(int64(0), int64(0)), 1.0),
		T(T(int64(5), int64(0)), 2.0),  // out of range
		T(T(int64(0), int64(-1)), 3.0), // out of range
	)
	m := BuildMatrix(2, 2, entries)
	if m.M.At(0, 0) != 1 || m.M.Sum() != 1 {
		t.Fatalf("builder bounds: %v", m.M)
	}
	v := BuildVector(2, L(T(int64(0), 1.0), T(int64(7), 9.0)))
	if v.V.At(0) != 1 || v.V.Sum() != 1 {
		t.Fatalf("vector builder bounds: %v", v.V.Data)
	}
}

func TestCOOStorageRoundTrip(t *testing.T) {
	coo := linalg.RandSparseCOO(5, 5, 0.4, 3, 17)
	s := COOStorage{C: coo}
	rebuilt := BuildCOO(5, 5, SparsifyAll(s))
	if !rebuilt.C.ToDense().Equal(coo.ToDense()) {
		t.Fatal("COO storage round trip failed")
	}
}

// Property-ish: sparsify(build(L)) == L for in-range unique entries.
func TestSparsifyBuildInverse(t *testing.T) {
	m := linalg.RandDense(4, 3, 1, 2, 23) // nonzero values
	s := MatrixStorage{M: m}
	l := SparsifyAll(s)
	rebuilt := BuildMatrix(4, 3, l)
	if !rebuilt.M.Equal(m) {
		t.Fatal("build(sparsify(M)) != M")
	}
	l2 := SparsifyAll(rebuilt)
	if !Equal(List(l), List(l2)) {
		t.Fatal("sparsify(build(L)) != L")
	}
}

// The calculus is dimension-agnostic: 3-D tensors live as association
// lists with triple keys. Mode-1 tensor-times-matrix contraction:
// out[a,b,j] = sum_i T[a,b,i] * M[i,j].
func TestTensorContraction(t *testing.T) {
	// T: 2x2x3 tensor as an assoc list; M: 3x2 matrix.
	var tensor List
	val := func(a, b, i int) float64 { return float64(a*100 + b*10 + i + 1) }
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for i := 0; i < 3; i++ {
				tensor = append(tensor, T(T(int64(a), int64(b), int64(i)), val(a, b, i)))
			}
		}
	}
	m := linalg.RandDense(3, 2, -1, 1, 201)
	q := Comprehension{
		Head: TupleExpr{[]Expr{
			TupleExpr{[]Expr{Var{"a"}, Var{"b"}, Var{"j"}}},
			Reduce{Monoid: "+", E: Var{"v"}},
		}},
		Quals: []Qualifier{
			Generator{Pat: PT(PT(PV("a"), PV("b"), PV("i")), PV("x")), Src: Var{"T"}},
			Generator{Pat: PT(PT(PV("ii"), PV("j")), PV("w")), Src: Var{"M"}},
			Guard{E: BinOp{"==", Var{"ii"}, Var{"i"}}},
			LetQual{Pat: PV("v"), E: BinOp{"*", Var{"x"}, Var{"w"}}},
			GroupBy{Pat: PT(PV("a"), PV("b"), PV("j"))},
		},
	}
	env := env0(map[string]Value{"T": tensor, "M": MatrixStorage{M: m}})
	got := MustEval(q, env).(List)
	if len(got) != 2*2*2 {
		t.Fatalf("entries %d", len(got))
	}
	for _, row := range got {
		tup := MustTuple(row)
		key := MustTuple(tup[0])
		a, b, j := MustInt(key[0]), MustInt(key[1]), MustInt(key[2])
		want := 0.0
		for i := 0; i < 3; i++ {
			want += val(int(a), int(b), i) * m.At(i, int(j))
		}
		if d := MustFloat(tup[1]) - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("out[%d,%d,%d] = %v want %v", a, b, j, tup[1], want)
		}
	}
}
