// Package comp implements the paper's comprehension calculus: the AST
// of array comprehensions (Figure 2), the desugaring rules (Figure 3
// and Rule 3), the group-by translation (Rules 11-12), monoids, and a
// reference in-memory evaluator used both as the semantics oracle for
// the distributed translation and as the per-tile code generator.
//
// The calculus is dynamically typed: values are Go `any` holding
// int64, float64, bool, string, Tuple, or List. Abstract arrays are
// association lists — Lists of (index, value) Tuples — exactly the
// sparse/coordinate representation of Section 1.1.
package comp

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is a dynamic calculus value: int64, float64, bool, string,
// Tuple, or List. nil is the unit value.
type Value = any

// Tuple is an immutable product value (p1, ..., pn).
type Tuple []Value

// List is a bag of values; abstract arrays are Lists of
// Tuple{index, value} pairs.
type List []Value

// T constructs a tuple.
func T(vs ...Value) Tuple { return Tuple(vs) }

// L constructs a list.
func L(vs ...Value) List { return List(vs) }

// AsInt coerces numeric values to int64.
func AsInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case float64:
		return int64(x), true
	default:
		return 0, false
	}
}

// MustInt coerces to int64 or panics with a calculus type error.
func MustInt(v Value) int64 {
	if i, ok := AsInt(v); ok {
		return i
	}
	panic(typeErr("int", v))
}

// AsFloat coerces numeric values to float64.
func AsFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	default:
		return 0, false
	}
}

// MustFloat coerces to float64 or panics.
func MustFloat(v Value) float64 {
	if f, ok := AsFloat(v); ok {
		return f
	}
	panic(typeErr("float", v))
}

// MustBool asserts a bool value.
func MustBool(v Value) bool {
	if b, ok := v.(bool); ok {
		return b
	}
	panic(typeErr("bool", v))
}

// MustTuple asserts a tuple value.
func MustTuple(v Value) Tuple {
	if t, ok := v.(Tuple); ok {
		return t
	}
	panic(typeErr("tuple", v))
}

// MustList asserts a list value.
func MustList(v Value) List {
	if l, ok := v.(List); ok {
		return l
	}
	panic(typeErr("list", v))
}

func typeErr(want string, v Value) error {
	return fmt.Errorf("comp: expected %s, got %T (%v)", want, v, v)
}

// Equal compares two values structurally; ints and floats of equal
// numeric value compare equal (the calculus is numerically coerced).
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case Tuple:
		y, ok := b.(Tuple)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case List:
		y, ok := b.(List)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	}
	if af, aok := AsFloat(a); aok {
		if bf, bok := AsFloat(b); bok {
			return af == bf
		}
		return false
	}
	return a == b
}

// KeyString renders a value as a canonical string usable as a map key
// for group-by and join hashing. Numerically equal ints and floats
// render identically.
func KeyString(v Value) string {
	var b strings.Builder
	writeKey(&b, v)
	return b.String()
}

func writeKey(b *strings.Builder, v Value) {
	switch x := v.(type) {
	case nil:
		b.WriteString("()")
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case int:
		b.WriteString(strconv.Itoa(x))
	case float64:
		if x == math.Trunc(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e15 {
			b.WriteString(strconv.FormatInt(int64(x), 10))
		} else {
			b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		}
	case bool:
		b.WriteString(strconv.FormatBool(x))
	case string:
		b.WriteString(strconv.Quote(x))
	case Tuple:
		b.WriteByte('(')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			writeKey(b, e)
		}
		b.WriteByte(')')
	case List:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			writeKey(b, e)
		}
		b.WriteByte(']')
	default:
		fmt.Fprintf(b, "%v", x)
	}
}

// Render pretty-prints a value for diagnostics and CLI output.
func Render(v Value) string {
	switch x := v.(type) {
	case nil:
		return "()"
	case string:
		return strconv.Quote(x)
	case Tuple:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = Render(e)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case List:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = Render(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// SortByKey sorts an association list (List of Tuple{key,val}) by the
// canonical key string; used to make results deterministic in tests
// and output.
func SortByKey(l List) List {
	out := make(List, len(l))
	copy(out, l)
	sort.SliceStable(out, func(i, j int) bool {
		return KeyString(MustTuple(out[i])[0]) < KeyString(MustTuple(out[j])[0])
	})
	return out
}
