package comp

import "repro/internal/linalg"

// This file implements the Section 3 specialization for local builds:
// when a matrix/vector builder wraps a comprehension whose trailing
// group-by key is exactly the output array index, the group-by is
// evaluated with destination arrays — one per factored monoid
// aggregation, Rule 12 — instead of a hash map:
//
//	matrix(n,m)[ ((i,j), e) | q1, group by (i,j) ]
//	=  { V_k := Array.fill(n*m)(1⊕k);
//	     [ V_k(i*m+j) := V_k(i*m+j) ⊕k g_k(w) | q1 ];
//	     (n, m, f(V_1, ..., V_k)) }
//
// The paper derives that this turns the matrix-multiplication
// comprehension into the textbook triple loop.

// Factored is one recognized reduction ⊕/x over a group-lifted
// variable (Rule 12): the hole variable replaces the reduction in the
// residual expression.
type Factored struct {
	Monoid string
	Var    string
	Hole   string
}

// FactorReductions rewrites reductions over lifted variables into
// placeholder variables, returning the factored aggregations and the
// residual expression. ok is false when a lifted variable survives
// outside a reduction (the general hash-map path must run then).
func FactorReductions(e Expr, lifted map[string]bool) ([]Factored, Expr, bool) {
	var aggs []Factored
	counter := 0
	var rewrite func(Expr) (Expr, bool)
	rewrite = func(x Expr) (Expr, bool) {
		switch v := x.(type) {
		case Reduce:
			if vr, ok := v.E.(Var); ok && lifted[vr.Name] {
				hole := holeName(&counter)
				aggs = append(aggs, Factored{Monoid: v.Monoid, Var: vr.Name, Hole: hole})
				return Var{Name: hole}, true
			}
			return x, false
		case Call:
			if (v.Fn == "count" || v.Fn == "length") && len(v.Args) == 1 {
				if vr, ok := v.Args[0].(Var); ok && lifted[vr.Name] {
					hole := holeName(&counter)
					aggs = append(aggs, Factored{Monoid: "count", Var: vr.Name, Hole: hole})
					return Var{Name: hole}, true
				}
			}
			args := make([]Expr, len(v.Args))
			allOK := true
			for i, a := range v.Args {
				na, ok := rewrite(a)
				args[i] = na
				allOK = allOK && ok
			}
			return Call{Fn: v.Fn, Args: args}, allOK
		case BinOp:
			l, lok := rewrite(v.L)
			r, rok := rewrite(v.R)
			return BinOp{Op: v.Op, L: l, R: r}, lok && rok
		case UnaryOp:
			inner, ok := rewrite(v.E)
			return UnaryOp{Op: v.Op, E: inner}, ok
		case TupleExpr:
			elems := make([]Expr, len(v.Elems))
			allOK := true
			for i, s := range v.Elems {
				ne, ok := rewrite(s)
				elems[i] = ne
				allOK = allOK && ok
			}
			return TupleExpr{Elems: elems}, allOK
		case IfExpr:
			c, cok := rewrite(v.Cond)
			th, tok := rewrite(v.Then)
			el, eok := rewrite(v.Else)
			return IfExpr{Cond: c, Then: th, Else: el}, cok && tok && eok
		default:
			return x, true
		}
	}
	final, _ := rewrite(e)
	for v := range FreeVars(final) {
		if lifted[v] {
			return nil, nil, false
		}
	}
	if len(aggs) == 0 {
		return nil, nil, false
	}
	return aggs, final, true
}

func holeName(counter *int) string {
	*counter++
	return "_hole" + string(rune('0'+*counter))
}

// destArraySpec is a matched destination-array build.
type destArraySpec struct {
	preQuals []Qualifier // qualifiers before the group-by
	keyVars  []string
	aggs     []Factored
	final    Expr
}

// matchDestArray checks the Section 3 shape: a trailing group-by whose
// pattern variables are exactly the head-key variables, with all
// lifted uses factored into reductions.
func matchDestArray(c Comprehension) (*destArraySpec, bool) {
	if len(c.Quals) == 0 {
		return nil, false
	}
	g, ok := c.Quals[len(c.Quals)-1].(GroupBy)
	if !ok || g.Of != nil {
		return nil, false
	}
	head, ok := c.Head.(TupleExpr)
	if !ok || len(head.Elems) != 2 {
		return nil, false
	}
	keyVars := PatternVars(g.Pat)
	// The head key must be the key variables verbatim.
	var keyElems []Expr
	if t, ok := head.Elems[0].(TupleExpr); ok {
		keyElems = t.Elems
	} else {
		keyElems = []Expr{head.Elems[0]}
	}
	if len(keyElems) != len(keyVars) {
		return nil, false
	}
	for i, e := range keyElems {
		v, ok := e.(Var)
		if !ok || v.Name != keyVars[i] {
			return nil, false
		}
	}
	// Lifted variables: everything bound before the group-by except
	// the key variables.
	lifted := map[string]bool{}
	for _, q := range c.Quals[:len(c.Quals)-1] {
		switch qq := q.(type) {
		case Generator:
			for _, v := range PatternVars(qq.Pat) {
				lifted[v] = true
			}
		case LetQual:
			for _, v := range PatternVars(qq.Pat) {
				lifted[v] = true
			}
		}
	}
	for _, k := range keyVars {
		delete(lifted, k)
	}
	aggs, final, ok := FactorReductions(head.Elems[1], lifted)
	if !ok {
		return nil, false
	}
	return &destArraySpec{
		preQuals: c.Quals[:len(c.Quals)-1],
		keyVars:  keyVars,
		aggs:     aggs,
		final:    final,
	}, true
}

// evalDestArrayMatrix runs the destination-array translation for the
// matrix builder. ok is false when the shape does not match.
func evalDestArrayMatrix(x BuildExpr, env *Env) (Value, bool) {
	body, okc := x.Body.(Comprehension)
	if !okc {
		return nil, false
	}
	spec, okm := matchDestArray(body)
	if !okm || len(spec.keyVars) != 2 {
		return nil, false
	}
	n := MustInt(eval(x.Args[0], env))
	m := MustInt(eval(x.Args[1], env))

	monoids := make([]Monoid, len(spec.aggs))
	for i, a := range spec.aggs {
		mo, err := LookupMonoid(a.Monoid)
		if err != nil || a.Monoid == "++" {
			return nil, false
		}
		monoids[i] = mo
	}
	// One destination accumulator per aggregation, plus a touched map
	// distinguishing absent cells (builder default 0) from cells whose
	// accumulated value happens to equal the identity.
	accs := make([][]Value, len(spec.aggs))
	for i, mo := range monoids {
		accs[i] = make([]Value, n*m)
		for j := range accs[i] {
			accs[i][j] = mo.Zero()
		}
	}
	touched := make([]bool, n*m)

	// Stream the pre-group bindings, accumulating in place:
	// [ V_k(i*m+j) ⊕= g_k(w) | q1 ].
	forEachBinding(spec.preQuals, binding{env: env}, func(b binding) {
		keyI, okI := b.env.Lookup(spec.keyVars[0])
		keyJ, okJ := b.env.Lookup(spec.keyVars[1])
		if !okI || !okJ {
			panic(typeErr("bound group key", nil))
		}
		i, j := MustInt(keyI), MustInt(keyJ)
		if i < 0 || i >= n || j < 0 || j >= m {
			return
		}
		cell := int(i*m + j)
		touched[cell] = true
		for k, a := range spec.aggs {
			v, ok := b.env.Lookup(a.Var)
			if !ok {
				panic(typeErr("lifted variable "+a.Var, nil))
			}
			accs[k][cell] = monoids[k].Op(accs[k][cell], MonoidLift(a.Monoid, v))
		}
	})

	out := linalg.NewDense(int(n), int(m))
	for cell := range touched {
		if !touched[cell] {
			continue
		}
		fenv := env
		for k, a := range spec.aggs {
			fenv = fenv.Bind(a.Hole, MonoidFinalize(a.Monoid, accs[k][cell]))
		}
		out.Data[cell] = MustFloat(eval(spec.final, fenv))
	}
	return MatrixStorage{M: out}, true
}

// evalDestArrayVector is the vector-builder analogue.
func evalDestArrayVector(x BuildExpr, env *Env) (Value, bool) {
	body, okc := x.Body.(Comprehension)
	if !okc {
		return nil, false
	}
	spec, okm := matchDestArray(body)
	if !okm || len(spec.keyVars) != 1 {
		return nil, false
	}
	n := MustInt(eval(x.Args[0], env))

	monoids := make([]Monoid, len(spec.aggs))
	for i, a := range spec.aggs {
		mo, err := LookupMonoid(a.Monoid)
		if err != nil || a.Monoid == "++" {
			return nil, false
		}
		monoids[i] = mo
	}
	accs := make([][]Value, len(spec.aggs))
	for i, mo := range monoids {
		accs[i] = make([]Value, n)
		for j := range accs[i] {
			accs[i][j] = mo.Zero()
		}
	}
	touched := make([]bool, n)

	forEachBinding(spec.preQuals, binding{env: env}, func(b binding) {
		keyI, okI := b.env.Lookup(spec.keyVars[0])
		if !okI {
			panic(typeErr("bound group key", nil))
		}
		i := MustInt(keyI)
		if i < 0 || i >= n {
			return
		}
		touched[i] = true
		for k, a := range spec.aggs {
			v, ok := b.env.Lookup(a.Var)
			if !ok {
				panic(typeErr("lifted variable "+a.Var, nil))
			}
			accs[k][i] = monoids[k].Op(accs[k][i], MonoidLift(a.Monoid, v))
		}
	})

	out := linalg.NewVector(int(n))
	for cell := range touched {
		if !touched[cell] {
			continue
		}
		fenv := env
		for k, a := range spec.aggs {
			fenv = fenv.Bind(a.Hole, MonoidFinalize(a.Monoid, accs[k][cell]))
		}
		out.Data[cell] = MustFloat(eval(spec.final, fenv))
	}
	return VectorStorage{V: out}, true
}

// forEachBinding streams the bindings produced by a qualifier prefix
// (no group-by) without materializing them, calling visit per binding.
func forEachBinding(quals []Qualifier, b binding, visit func(binding)) {
	if len(quals) == 0 {
		visit(b)
		return
	}
	switch q := quals[0].(type) {
	case Generator:
		src := eval(q.Src, b.env)
		iterSource(src, func(v Value) bool {
			nb, ok := b.withPat(q.Pat, v)
			if ok {
				forEachBinding(quals[1:], nb, visit)
			}
			return true
		})
	case LetQual:
		nb, ok := b.withPat(q.Pat, eval(q.E, b.env))
		if ok {
			forEachBinding(quals[1:], nb, visit)
		}
	case Guard:
		if MustBool(eval(q.E, b.env)) {
			forEachBinding(quals[1:], b, visit)
		}
	default:
		panic(typeErr("pre-group qualifier", q))
	}
}
