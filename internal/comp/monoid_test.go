package comp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLookupMonoid(t *testing.T) {
	for _, name := range []string{"+", "*", "min", "max", "&&", "||", "++", "count", "avg"} {
		m, err := LookupMonoid(name)
		if err != nil {
			t.Fatalf("lookup %q: %v", name, err)
		}
		if m.Name != name {
			t.Fatalf("name %q vs %q", m.Name, name)
		}
	}
	if _, err := LookupMonoid("xor"); err == nil {
		t.Fatal("expected unknown-monoid error")
	}
}

func TestMonoidIdentities(t *testing.T) {
	cases := []struct {
		name string
		vals List
		want Value
	}{
		{"+", L(1.0, 2.0, 3.5), 6.5},
		{"*", L(2.0, 3.0), 6.0},
		{"min", L(3.0, 1.0, 2.0), 1.0},
		{"max", L(3.0, 1.0, 2.0), 3.0},
		{"&&", L(true, true), true},
		{"&&", L(true, false), false},
		{"||", L(false, false), false},
		{"||", L(false, true), true},
		{"count", L("a", "b", "c"), int64(3)},
		{"avg", L(2.0, 4.0), 3.0},
	}
	for _, c := range cases {
		got, err := ReduceList(c.name, c.vals)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, c.want) {
			t.Fatalf("%s over %v = %v, want %v", c.name, Render(c.vals), got, c.want)
		}
	}
}

func TestMonoidEmptyList(t *testing.T) {
	cases := map[string]Value{
		"+":     0.0,
		"*":     1.0,
		"count": int64(0),
		"&&":    true,
		"||":    false,
		"avg":   0.0, // finalize of (0,0)
	}
	for name, want := range cases {
		got, err := ReduceList(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want) {
			t.Fatalf("%s over [] = %v, want %v", name, got, want)
		}
	}
	minV, _ := ReduceList("min", nil)
	if !math.IsInf(MustFloat(minV), 1) {
		t.Fatal("min identity should be +Inf")
	}
}

func TestConcatMonoid(t *testing.T) {
	got, err := ReduceList("++", L(L(int64(1)), L(int64(2), int64(3))))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, L(int64(1), int64(2), int64(3))) {
		t.Fatalf("concat %v", Render(got))
	}
	// Non-list elements are lifted to singletons.
	got2, err := ReduceList("++", L(int64(1), int64(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got2, L(int64(1), int64(2))) {
		t.Fatalf("lifted concat %v", Render(got2))
	}
}

func TestProductMonoid(t *testing.T) {
	plus, _ := LookupMonoid("+")
	count, _ := LookupMonoid("count")
	prod := ProductMonoid([]Monoid{plus, count})
	if !prod.Commutative {
		t.Fatal("product of commutative monoids should commute")
	}
	acc := prod.Zero()
	acc = prod.Op(acc, T(2.0, int64(1)))
	acc = prod.Op(acc, T(3.0, int64(1)))
	if !Equal(acc, T(5.0, int64(2))) {
		t.Fatalf("product acc %v", Render(acc))
	}

	concat, _ := LookupMonoid("++")
	if ProductMonoid([]Monoid{plus, concat}).Commutative {
		t.Fatal("product with non-commutative factor must not commute")
	}
}

func TestMonoidLiftFinalize(t *testing.T) {
	if MonoidLift("count", "whatever") != int64(1) {
		t.Fatal("count lift")
	}
	if !Equal(MonoidLift("avg", 4.0), T(4.0, int64(1))) {
		t.Fatal("avg lift")
	}
	if MonoidFinalize("avg", T(10.0, int64(4))) != 2.5 {
		t.Fatal("avg finalize")
	}
	if MonoidFinalize("+", 7.0) != 7.0 {
		t.Fatal("plus finalize should be identity")
	}
	if !Equal(MonoidLift("++", int64(5)), L(int64(5))) {
		t.Fatal("concat lift")
	}
}

// Property: the + monoid is associative and commutative over random
// float lists (up to tolerance).
func TestQuickPlusMonoidLaws(t *testing.T) {
	plus, _ := LookupMonoid("+")
	f := func(ra, rb, rc int32) bool {
		// Bounded magnitudes keep float associativity within absolute
		// tolerance.
		a, b, c := float64(ra)/1e3, float64(rb)/1e3, float64(rc)/1e3
		left := plus.Op(plus.Op(a, b), c)
		right := plus.Op(a, plus.Op(b, c))
		comm := plus.Op(a, b)
		comm2 := plus.Op(b, a)
		return math.Abs(MustFloat(left)-MustFloat(right)) < 1e-6 &&
			math.Abs(MustFloat(comm)-MustFloat(comm2)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: min/max are idempotent, associative, commutative.
func TestQuickMinMaxLaws(t *testing.T) {
	for _, name := range []string{"min", "max"} {
		m, _ := LookupMonoid(name)
		f := func(a, b float64) bool {
			if MustFloat(m.Op(a, a)) != a {
				return false
			}
			return Equal(m.Op(a, b), m.Op(b, a))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
