package comp

import (
	"fmt"
	"strings"
)

// BuildExpr applies a named array builder to the association list
// produced by a comprehension (or any list expression): the paper's
// matrix(n,m)[...], vector(n)[...], tiled(n,m)[...], and rdd[...].
// Builders convert the abstract coordinate representation back into a
// concrete storage structure.
type BuildExpr struct {
	Builder string
	Args    []Expr
	Body    Expr
}

func (BuildExpr) exprNode() {}

func (e BuildExpr) String() string {
	if len(e.Args) == 0 {
		return fmt.Sprintf("%s%s", e.Builder, e.Body)
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)%s", e.Builder, strings.Join(args, ", "), e.Body)
}

// Range is a half-open integer interval [Lo, Hi) produced by the
// `until` and `to` operators; generators iterate it without
// materializing a list.
type Range struct{ Lo, Hi int64 }

// Len returns the number of elements.
func (r Range) Len() int64 {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// ToList materializes the range.
func (r Range) ToList() List {
	out := make(List, 0, r.Len())
	for i := r.Lo; i < r.Hi; i++ {
		out = append(out, i)
	}
	return out
}

func (r Range) String() string { return fmt.Sprintf("%d until %d", r.Lo, r.Hi) }
