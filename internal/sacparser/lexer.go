// Package sacparser implements the lexer and recursive-descent parser
// for the SAC comprehension DSL of the paper:
//
//	tiled(n,m)[ ((i,j), +/v) | ((i,k),a) <- M, ((kk,j),b) <- N,
//	            kk == k, let v = a*b, group by (i,j) ]
//
// It produces the comp package's AST.
package sacparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokOp // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"let": true, "group": true, "by": true, "until": true, "to": true,
	"if": true, "true": true, "false": true,
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer splits the input into tokens.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// multi-character operators, longest first.
var multiOps = []string{"<-", "==", "!=", "<=", ">=", "&&", "||", "++"}

// lex tokenizes the whole input, returning a syntax error with offset
// on an unexpected character.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if !l.lexOp() {
				return nil, fmt.Errorf("sac: unexpected character %q at offset %d", c, start)
			}
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "//") {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if keywords[text] {
		kind = tokKeyword
	}
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	isFloat := false
	// A '.' followed by a digit continues a float; `1..` style ranges
	// are not in the grammar.
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			isFloat = true
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	l.tokens = append(l.tokens, token{kind: kind, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return fmt.Errorf("sac: bad escape \\%c at offset %d", l.src[l.pos], l.pos)
			}
			l.pos++
			continue
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sac: unterminated string at offset %d", start)
}

func (l *lexer) lexOp() bool {
	for _, op := range multiOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.tokens = append(l.tokens, token{kind: tokOp, text: op, pos: l.pos})
			l.pos += len(op)
			return true
		}
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', '[', ']', ',', '+', '-', '*', '/', '%', '<', '>', '=', '|', '!', ':':
		l.tokens = append(l.tokens, token{kind: tokOp, text: string(c), pos: l.pos})
		l.pos++
		return true
	}
	return false
}
