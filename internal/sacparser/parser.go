package sacparser

import (
	"fmt"
	"strconv"

	"repro/internal/comp"
)

// Builders recognized at the head of a build expression, e.g.
// matrix(n,m)[...], tiled(n,m)[...], rdd[...].
var builderNames = map[string]bool{
	"matrix": true, "vector": true, "coo": true,
	"tiled": true, "tiledvec": true,
	"rdd": true, "list": true, "set": true,
}

// monoid names usable in reductions like min/xs.
var namedMonoids = map[string]bool{
	"min": true, "max": true, "count": true, "avg": true, "sum": true,
}

// Parse parses a full SAC expression and returns its AST.
func Parse(src string) (comp.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

// MustParse parses or panics; for tests and static queries.
func MustParse(src string) comp.Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return token{kind: tokEOF}
}
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sac: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectOp(op string) error {
	t := p.peek()
	if t.kind != tokOp || t.text != op {
		return p.errf("expected %q, found %s", op, t)
	}
	p.next()
	return nil
}

func (p *parser) atOp(op string) bool {
	t := p.peek()
	return t.kind == tokOp && t.text == op
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

// Binary operator precedence tiers, loosest first.
var precedence = [][]string{
	{"||"},
	{"&&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"until", "to"},
	{"+", "-", "++"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (comp.Expr, error) { return p.parseBinary(0) }

func (p *parser) parseBinary(level int) (comp.Expr, error) {
	if level >= len(precedence) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.matchBinaryOp(level)
		if !ok {
			return left, nil
		}
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = comp.BinOp{Op: op, L: left, R: right}
	}
}

func (p *parser) matchBinaryOp(level int) (string, bool) {
	t := p.peek()
	var text string
	switch t.kind {
	case tokOp:
		text = t.text
	case tokKeyword:
		if t.text == "until" || t.text == "to" {
			text = t.text
		} else {
			return "", false
		}
	default:
		return "", false
	}
	for _, op := range precedence[level] {
		if op == text {
			p.next()
			return op, true
		}
	}
	return "", false
}

func (p *parser) parseUnary() (comp.Expr, error) {
	t := p.peek()
	if t.kind == tokOp && (t.text == "-" || t.text == "!") {
		// A reduction like +/x is handled in parsePrimary; unary
		// minus must not swallow `-/x` (not a valid monoid anyway).
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return comp.UnaryOp{Op: t.text, E: e}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary followed by index suffixes V[i,j].
func (p *parser) parsePostfix() (comp.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atOp("[") {
		// Distinguish indexing from a trailing comprehension: builders
		// consume their own bracket, so any '[' here is indexing.
		p.next()
		var idxs []comp.Expr
		for {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			idxs = append(idxs, idx)
			if p.atOp(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		e = comp.Index{Arr: e, Idxs: idxs}
	}
	return e, nil
}

func (p *parser) parsePrimary() (comp.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return comp.Lit{Val: v}, nil
	case t.kind == tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return comp.Lit{Val: v}, nil
	case t.kind == tokString:
		p.next()
		return comp.Lit{Val: t.text}, nil
	case t.kind == tokKeyword && (t.text == "true" || t.text == "false"):
		p.next()
		return comp.Lit{Val: t.text == "true"}, nil
	case t.kind == tokKeyword && t.text == "if":
		return p.parseIf()
	case t.kind == tokOp && isReductionOp(t.text) && p.peek2().kind == tokOp && p.peek2().text == "/":
		p.next() // monoid
		p.next() // '/'
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return comp.Reduce{Monoid: t.text, E: e}, nil
	case t.kind == tokIdent && namedMonoids[t.text] && p.peek2().kind == tokOp && p.peek2().text == "/":
		p.next()
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		name := t.text
		if name == "sum" {
			name = "+"
		}
		return comp.Reduce{Monoid: name, E: e}, nil
	case t.kind == tokIdent && builderNames[t.text]:
		return p.parseBuild()
	case t.kind == tokIdent:
		p.next()
		if p.atOp("(") {
			return p.parseCallArgs(t.text)
		}
		return comp.Var{Name: t.text}, nil
	case t.kind == tokOp && t.text == "(":
		return p.parseParenOrTuple()
	case t.kind == tokOp && t.text == "[":
		return p.parseComprehension()
	default:
		return nil, p.errf("unexpected %s", t)
	}
}

func isReductionOp(op string) bool {
	switch op {
	case "+", "*", "&&", "||", "++":
		return true
	}
	return false
}

func (p *parser) parseIf() (comp.Expr, error) {
	p.next() // if
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(","); err != nil {
		return nil, err
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(","); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return comp.IfExpr{Cond: cond, Then: then, Else: els}, nil
}

// parseBuild parses builder(args...)[ comprehension ] or builder[...].
func (p *parser) parseBuild() (comp.Expr, error) {
	name := p.next().text
	var args []comp.Expr
	if p.atOp("(") {
		p.next()
		for !p.atOp(")") {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.atOp(",") {
				p.next()
			}
		}
		p.next() // ')'
	}
	if !p.atOp("[") {
		// Not a build after all: `matrix` used as a plain identifier
		// or call result. Treat zero-arg as a variable reference.
		if len(args) == 0 {
			return comp.Var{Name: name}, nil
		}
		return nil, p.errf("builder %s(...) must be followed by a comprehension", name)
	}
	body, err := p.parseComprehension()
	if err != nil {
		return nil, err
	}
	return comp.BuildExpr{Builder: name, Args: args, Body: body}, nil
}

func (p *parser) parseCallArgs(fn string) (comp.Expr, error) {
	p.next() // '('
	var args []comp.Expr
	for !p.atOp(")") {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.atOp(",") {
			p.next()
		}
	}
	p.next() // ')'
	return comp.Call{Fn: fn, Args: args}, nil
}

// parseParenOrTuple parses (e), (e1, e2, ...), or the unit tuple ().
func (p *parser) parseParenOrTuple() (comp.Expr, error) {
	p.next() // '('
	if p.atOp(")") {
		p.next()
		return comp.TupleExpr{}, nil
	}
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.atOp(")") {
		p.next()
		return first, nil
	}
	elems := []comp.Expr{first}
	for p.atOp(",") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return comp.TupleExpr{Elems: elems}, nil
}

// parseComprehension parses [ e | q1, ..., qn ] or a list literal
// [ e1, ..., en ].
func (p *parser) parseComprehension() (comp.Expr, error) {
	if err := p.expectOp("["); err != nil {
		return nil, err
	}
	if p.atOp("]") {
		// Empty list [] as a comprehension with a false guard.
		p.next()
		return comp.Comprehension{
			Head:  comp.Lit{Val: nil},
			Quals: []comp.Qualifier{comp.Guard{E: comp.Lit{Val: false}}},
		}, nil
	}
	head, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.atOp("]") {
		// Singleton list [e].
		p.next()
		return comp.Comprehension{Head: head}, nil
	}
	if p.atOp(",") {
		// List literal [e1, e2, ...]: no direct AST form, reject for
		// now (the DSL builds lists with comprehensions).
		return nil, p.errf("list literals are not supported; use a comprehension")
	}
	if err := p.expectOp("|"); err != nil {
		return nil, err
	}
	quals, err := p.parseQualifiers()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("]"); err != nil {
		return nil, err
	}
	return comp.Comprehension{Head: head, Quals: quals}, nil
}

func (p *parser) parseQualifiers() ([]comp.Qualifier, error) {
	var quals []comp.Qualifier
	for {
		q, err := p.parseQualifier()
		if err != nil {
			return nil, err
		}
		quals = append(quals, q)
		if p.atOp(",") {
			p.next()
			continue
		}
		return quals, nil
	}
}

func (p *parser) parseQualifier() (comp.Qualifier, error) {
	switch {
	case p.atKeyword("let"):
		p.next()
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return comp.LetQual{Pat: pat, E: e}, nil
	case p.atKeyword("group"):
		p.next()
		if !p.atKeyword("by") {
			return nil, p.errf("expected 'by' after 'group'")
		}
		p.next()
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if p.atOp(":") {
			p.next()
			of, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return comp.GroupBy{Pat: pat, Of: of}, nil
		}
		return comp.GroupBy{Pat: pat}, nil
	default:
		// Generator (pattern <- expr) or guard (boolean expr). Try a
		// pattern followed by '<-' first; otherwise backtrack.
		save := p.i
		pat, err := p.parsePattern()
		if err == nil && p.atOp("<-") {
			p.next()
			src, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return comp.Generator{Pat: pat, Src: src}, nil
		}
		p.i = save
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return comp.Guard{E: e}, nil
	}
}

func (p *parser) parsePattern() (comp.Pattern, error) {
	t := p.peek()
	switch {
	case t.kind == tokIdent:
		p.next()
		return comp.PV(t.text), nil
	case t.kind == tokOp && t.text == "(":
		p.next()
		var elems []comp.Pattern
		for !p.atOp(")") {
			sub, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			elems = append(elems, sub)
			if p.atOp(",") {
				p.next()
			} else {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return comp.PT(elems...), nil
	default:
		return nil, p.errf("expected pattern, found %s", t)
	}
}
