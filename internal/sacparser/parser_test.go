package sacparser

import (
	"strings"
	"testing"

	"repro/internal/comp"
	"repro/internal/linalg"
)

func TestParseLiterals(t *testing.T) {
	cases := map[string]comp.Value{
		"42":     int64(42),
		"3.5":    3.5,
		"1e3":    1000.0,
		"true":   true,
		"false":  false,
		`"hi"`:   "hi",
		`"a\nb"`: "a\nb",
	}
	for src, want := range cases {
		e := MustParse(src)
		lit, ok := e.(comp.Lit)
		if !ok || !comp.Equal(lit.Val, want) {
			t.Fatalf("%q parsed to %v", src, e)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// 1 + 2 * 3 == 7  must group as (1 + (2*3)) == 7.
	e := MustParse("1 + 2 * 3 == 7")
	if got := comp.MustEval(e, nil); got != true {
		t.Fatalf("precedence eval %v", got)
	}
	e2 := MustParse("(1 + 2) * 3")
	if got := comp.MustEval(e2, nil); got != int64(9) {
		t.Fatalf("paren eval %v", got)
	}
	e3 := MustParse("2 < 3 && 4 >= 4")
	if got := comp.MustEval(e3, nil); got != true {
		t.Fatalf("bool eval %v", got)
	}
	e4 := MustParse("-2 + 5")
	if got := comp.MustEval(e4, nil); got != int64(3) {
		t.Fatalf("unary eval %v", got)
	}
	e5 := MustParse("!false || false")
	if got := comp.MustEval(e5, nil); got != true {
		t.Fatalf("not eval %v", got)
	}
}

func TestParseRangeOps(t *testing.T) {
	e := MustParse("0 until 3+2")
	r := comp.MustEval(e, nil).(comp.Range)
	if r.Lo != 0 || r.Hi != 5 {
		t.Fatalf("until %+v", r)
	}
	e2 := MustParse("1 to 3")
	r2 := comp.MustEval(e2, nil).(comp.Range)
	if r2.Hi != 4 {
		t.Fatalf("to %+v", r2)
	}
}

func TestParseTuplesAndCalls(t *testing.T) {
	e := MustParse("(1, 2.5, min(3, 4))")
	got := comp.MustEval(e, nil)
	if !comp.Equal(got, comp.T(int64(1), 2.5, int64(3))) {
		t.Fatalf("tuple %v", comp.Render(got))
	}
	if _, ok := MustParse("()").(comp.TupleExpr); !ok {
		t.Fatal("unit tuple")
	}
}

func TestParseComprehension(t *testing.T) {
	e := MustParse("[ i*i | i <- 0 until 4 ]")
	got := comp.MustEval(e, nil).(comp.List)
	if !comp.Equal(got, comp.L(int64(0), int64(1), int64(4), int64(9))) {
		t.Fatalf("comprehension %v", comp.Render(got))
	}
}

func TestParseGuardsAndLets(t *testing.T) {
	e := MustParse("[ y | i <- 0 until 10, i % 3 == 0, let y = i + 1 ]")
	got := comp.MustEval(e, nil).(comp.List)
	if !comp.Equal(got, comp.L(int64(1), int64(4), int64(7), int64(10))) {
		t.Fatalf("got %v", comp.Render(got))
	}
}

func TestParseGroupBy(t *testing.T) {
	e := MustParse("[ (k, +/v) | (i,v) <- V, group by k: i % 2 ]")
	env := (*comp.Env)(nil).Bind("V", comp.VectorStorage{V: linalg.NewVectorFrom([]float64{1, 10, 2, 20})})
	got := comp.SortByKey(comp.MustEval(e, env).(comp.List))
	want := comp.L(comp.T(int64(0), 3.0), comp.T(int64(1), 30.0))
	if !comp.Equal(got, want) {
		t.Fatalf("got %v", comp.Render(got))
	}
}

// The paper's matrix multiplication Query (9), parsed from source.
func TestParseMatMulQuery(t *testing.T) {
	src := `matrix(3, 5)[ ((i,j), +/v) | ((i,k),a) <- M, ((kk,j),b) <- N,
	                      kk == k, let v = a*b, group by (i,j) ]`
	e := MustParse(src)
	a := linalg.RandDense(3, 4, 0, 2, 31)
	b := linalg.RandDense(4, 5, 0, 2, 32)
	env := (*comp.Env)(nil).
		Bind("M", comp.MatrixStorage{M: a}).
		Bind("N", comp.MatrixStorage{M: b})
	got := comp.MustEval(e, env).(comp.MatrixStorage)
	if !got.M.EqualApprox(linalg.Mul(a, b), 1e-9) {
		t.Fatal("parsed matmul mismatch")
	}
}

// The paper's Figure 1 row-sum query, parsed from source.
func TestParseRowSumQuery(t *testing.T) {
	src := `vector(2)[ (i, +/m) | ((i,j),m) <- M, group by i ]`
	m := linalg.NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	env := (*comp.Env)(nil).Bind("M", comp.MatrixStorage{M: m})
	got := comp.MustEval(MustParse(src), env).(comp.VectorStorage)
	if !got.V.Equal(linalg.NewVectorFrom([]float64{6, 15})) {
		t.Fatalf("row sums %v", got.V.Data)
	}
}

// Matrix addition expressed with array indexing N[i,j] (Section 2),
// which the evaluator accesses directly.
func TestParseIndexedAddition(t *testing.T) {
	src := `matrix(2,2)[ ((i,j), a + N[i,j]) | ((i,j),a) <- M ]`
	a := linalg.RandDense(2, 2, 0, 5, 33)
	b := linalg.RandDense(2, 2, 0, 5, 34)
	env := (*comp.Env)(nil).
		Bind("M", comp.MatrixStorage{M: a}).
		Bind("N", comp.MatrixStorage{M: b})
	got := comp.MustEval(MustParse(src), env).(comp.MatrixStorage)
	if !got.M.EqualApprox(linalg.AddDense(a, b), 1e-12) {
		t.Fatal("indexed addition mismatch")
	}
}

func TestParseReductions(t *testing.T) {
	cases := map[string]comp.Value{
		"+/[ i | i <- 1 to 4 ]":          int64(10),
		"*/[ i | i <- 1 to 4 ]":          int64(24),
		"min/[ i | i <- 3 to 5 ]":        int64(3),
		"max/[ i | i <- 3 to 5 ]":        int64(5),
		"count/[ i | i <- 3 to 5 ]":      int64(3),
		"sum/[ i | i <- 1 to 3 ]":        int64(6),
		"avg/[ float(i) | i <- 1 to 3 ]": 2.0,
		"&&/[ i > 0 | i <- 1 to 3 ]":     true,
		"||/[ i > 2 | i <- 1 to 3 ]":     true,
	}
	for src, want := range cases {
		got := comp.MustEval(MustParse(src), nil)
		if !comp.Equal(got, want) {
			t.Fatalf("%q = %v, want %v", src, comp.Render(got), comp.Render(want))
		}
	}
}

func TestParseIfExpr(t *testing.T) {
	e := MustParse("if(2 > 1, 10, 20)")
	if got := comp.MustEval(e, nil); got != int64(10) {
		t.Fatalf("if %v", got)
	}
}

func TestParseBuilderWithoutArgs(t *testing.T) {
	e := MustParse("rdd[ (i, i) | i <- 0 until 2 ]")
	be, ok := e.(comp.BuildExpr)
	if !ok || be.Builder != "rdd" || len(be.Args) != 0 {
		t.Fatalf("rdd builder %v", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"[ x | ",
		"matrix(2,2) 5",
		"(1, 2",
		"group",
		"[ x | group x ]",
		"let = 3",
		`"unterminated`,
		"1 @ 2",
		"[1, 2, 3]",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("expected parse error for %q", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	e := MustParse("1 + // comment\n 2")
	if got := comp.MustEval(e, nil); got != int64(3) {
		t.Fatalf("comment handling %v", got)
	}
}

func TestParseEmptyList(t *testing.T) {
	e := MustParse("[]")
	got := comp.MustEval(e, nil).(comp.List)
	if len(got) != 0 {
		t.Fatalf("empty list %v", got)
	}
}

func TestParsePatternForms(t *testing.T) {
	e := MustParse("[ a | ((a, _), (b)) <- xs ]")
	c, ok := e.(comp.Comprehension)
	if !ok {
		t.Fatal("not a comprehension")
	}
	g := c.Quals[0].(comp.Generator)
	if g.Pat.String() != "((a,_),(b))" {
		t.Fatalf("pattern %s", g.Pat)
	}
}

// Round trip: printing a parsed expression and re-parsing yields an
// equivalent AST (as judged by printing again).
func TestParsePrintRoundTrip(t *testing.T) {
	srcs := []string{
		"matrix(3, 5)[ ((i,j), +/v) | ((i,k),a) <- M, ((kk,j),b) <- N, kk == k, let v = a*b, group by (i,j) ]",
		"vector(2)[ (i, +/m) | ((i,j),m) <- M, group by i ]",
		"[ (k, count(v)) | (i,v) <- V, group by k: i % 2 ]",
		"&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]",
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		p1 := e1.String()
		e2, err := Parse(p1)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\nprinted: %s", src, err, p1)
		}
		p2 := e2.String()
		if p1 != p2 {
			t.Fatalf("print round trip:\n%s\n%s", p1, p2)
		}
	}
}

func TestLexerOffsets(t *testing.T) {
	_, err := Parse("1 + $")
	if err == nil || !strings.Contains(err.Error(), "offset 4") {
		t.Fatalf("expected offset in error, got %v", err)
	}
}
