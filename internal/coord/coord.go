// Package coord implements distributed arrays in coordinate format
// (Section 4 of the paper): an RDD of ((i,j), v) entries. This is the
// storage DIABLO generates for and the baseline the paper's block
// arrays improve on — it is correct but shuffles every element
// individually, so it exists here both as a baseline for ablation
// benchmarks and as the executable semantics of the Section 4
// translation rules (join derivation, reduceByKey derivation).
package coord

import (
	"repro/internal/dataflow"
	"repro/internal/linalg"
)

// Key is a 2-D element coordinate.
type Key = dataflow.Coord

// Entry is one matrix element in coordinate format.
type Entry = dataflow.Pair[Key, float64]

// Matrix is a distributed coordinate-format matrix. Missing entries
// are implicit zeros.
type Matrix struct {
	Rows, Cols int64
	Entries    *dataflow.Dataset[Entry]
}

// clampParts mirrors Parallelize's partition-count rules for the
// Generate-based constructors below: default when unset, never more
// partitions than rows, and at least one partition even when empty.
func clampParts(ctx *dataflow.Context, numPartitions, n int) int {
	if numPartitions <= 0 {
		numPartitions = ctx.DefaultPartitions()
	}
	if numPartitions > n && n > 0 {
		numPartitions = n
	}
	if n == 0 {
		numPartitions = 1
	}
	return numPartitions
}

// FromDense distributes all elements of a dense matrix (including
// zeros, matching the paper's dense coordinate representation). The
// entries are produced per partition by tasks, not materialized as one
// driver-side slice: a coordinate array holds an Entry per element, an
// order of magnitude more driver memory than the dense source, which
// defeats the out-of-core budget before the first stage runs.
func FromDense(ctx *dataflow.Context, d *linalg.Dense, numPartitions int) *Matrix {
	n := d.Rows * d.Cols
	numPartitions = clampParts(ctx, numPartitions, n)
	parts := numPartitions
	entries := dataflow.Generate(ctx, parts, func(p int) []Entry {
		lo, hi := p*n/parts, (p+1)*n/parts
		out := make([]Entry, 0, hi-lo)
		for idx := lo; idx < hi; idx++ {
			i, j := idx/d.Cols, idx%d.Cols
			out = append(out, dataflow.KV(Key{I: int64(i), J: int64(j)}, d.At(i, j)))
		}
		return out
	})
	return &Matrix{Rows: int64(d.Rows), Cols: int64(d.Cols), Entries: entries}
}

// FromCOO distributes only the stored entries of a sparse matrix,
// converting each task's slice of the stored entries on demand.
func FromCOO(ctx *dataflow.Context, c *linalg.COO, numPartitions int) *Matrix {
	n := c.NNZ()
	numPartitions = clampParts(ctx, numPartitions, n)
	parts := numPartitions
	entries := dataflow.Generate(ctx, parts, func(p int) []Entry {
		lo, hi := p*n/parts, (p+1)*n/parts
		out := make([]Entry, 0, hi-lo)
		for _, e := range c.Entries[lo:hi] {
			out = append(out, dataflow.KV(Key{I: int64(e.I), J: int64(e.J)}, e.V))
		}
		return out
	})
	return &Matrix{Rows: int64(c.Rows), Cols: int64(c.Cols), Entries: entries}
}

// ToDense collects the entries into a dense matrix, summing
// duplicates.
func (m *Matrix) ToDense() *linalg.Dense {
	out := linalg.NewDense(int(m.Rows), int(m.Cols))
	for _, e := range dataflow.Collect(m.Entries) {
		out.Add(int(e.Key.I), int(e.Key.J), e.Value)
	}
	return out
}

// Add implements Query (8) on coordinate arrays: a join on the element
// coordinate followed by addition.
func (m *Matrix) Add(o *Matrix) *Matrix {
	j := dataflow.Join(m.Entries, o.Entries, m.Entries.NumPartitions())
	entries := dataflow.Map(j, func(p dataflow.Pair[Key, dataflow.JoinedPair[float64, float64]]) Entry {
		return dataflow.KV(p.Key, p.Value.Left+p.Value.Right)
	})
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Entries: entries}
}

// Multiply implements the Section 4 translation of Query (9):
//
//	A.map{ ((i,k),a) => (k, ((i,k),a)) }
//	 .join(B.map{ ((kk,j),b) => (kk, ((kk,j),b)) })
//	 .map{ (_, (((i,k),a), ((kk,j),b))) => ((i,j), a*b) }
//	 .reduceByKey(_+_)
//
// This shuffles both matrices element-wise and then shuffles every
// product — the cost Section 4 points out motivates block arrays.
func (m *Matrix) Multiply(o *Matrix) *Matrix {
	parts := m.Entries.NumPartitions()
	left := dataflow.Map(m.Entries, func(e Entry) dataflow.Pair[int64, Entry] {
		return dataflow.KV(e.Key.J, e)
	})
	right := dataflow.Map(o.Entries, func(e Entry) dataflow.Pair[int64, Entry] {
		return dataflow.KV(e.Key.I, e)
	})
	joined := dataflow.Join(left, right, parts)
	products := dataflow.Map(joined, func(p dataflow.Pair[int64, dataflow.JoinedPair[Entry, Entry]]) Entry {
		return dataflow.KV(Key{I: p.Value.Left.Key.I, J: p.Value.Right.Key.J},
			p.Value.Left.Value*p.Value.Right.Value)
	})
	summed := dataflow.ReduceByKey(products, func(a, b float64) float64 { return a + b }, parts)
	return &Matrix{Rows: m.Rows, Cols: o.Cols, Entries: summed}
}

// RowSums computes Query (1) on coordinate arrays: group the entries
// by row index with reduceByKey.
func (m *Matrix) RowSums() *dataflow.Dataset[dataflow.Pair[int64, float64]] {
	keyed := dataflow.Map(m.Entries, func(e Entry) dataflow.Pair[int64, float64] {
		return dataflow.KV(e.Key.I, e.Value)
	})
	return dataflow.ReduceByKey(keyed, func(a, b float64) float64 { return a + b }, m.Entries.NumPartitions())
}

// Transpose swaps coordinates with a narrow map.
func (m *Matrix) Transpose() *Matrix {
	entries := dataflow.Map(m.Entries, func(e Entry) Entry {
		return dataflow.KV(Key{I: e.Key.J, J: e.Key.I}, e.Value)
	})
	return &Matrix{Rows: m.Cols, Cols: m.Rows, Entries: entries}
}
