package coord

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/linalg"
)

func TestCoordRoundTrip(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	d := linalg.RandDense(5, 4, -2, 2, 1)
	m := FromDense(ctx, d, 3)
	if !m.ToDense().Equal(d) {
		t.Fatal("round trip")
	}
}

func TestCoordSparseFromCOO(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	c := linalg.RandSparseCOO(6, 6, 0.3, 5, 2)
	m := FromCOO(ctx, c, 2)
	if !m.ToDense().Equal(c.ToDense()) {
		t.Fatal("sparse round trip")
	}
}

func TestCoordAdd(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	da := linalg.RandDense(4, 5, 0, 10, 3)
	db := linalg.RandDense(4, 5, 0, 10, 4)
	got := FromDense(ctx, da, 3).Add(FromDense(ctx, db, 3)).ToDense()
	if !got.EqualApprox(linalg.AddDense(da, db), 1e-12) {
		t.Fatal("coord add mismatch")
	}
}

func TestCoordMultiply(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	da := linalg.RandDense(4, 3, 0, 2, 5)
	db := linalg.RandDense(3, 5, 0, 2, 6)
	got := FromDense(ctx, da, 3).Multiply(FromDense(ctx, db, 3)).ToDense()
	if !got.EqualApprox(linalg.Mul(da, db), 1e-9) {
		t.Fatal("coord multiply mismatch")
	}
}

func TestCoordSparseMultiply(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	ca := linalg.RandSparseCOO(5, 6, 0.4, 3, 7)
	cb := linalg.RandSparseCOO(6, 4, 0.4, 3, 8)
	got := FromCOO(ctx, ca, 2).Multiply(FromCOO(ctx, cb, 2)).ToDense()
	want := linalg.Mul(ca.ToDense(), cb.ToDense())
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("sparse coord multiply mismatch")
	}
}

func TestCoordRowSums(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	d := linalg.RandDense(4, 6, -1, 1, 9)
	sums := dataflow.CollectAsMap(FromDense(ctx, d, 3).RowSums())
	want := d.RowSums()
	for i := 0; i < 4; i++ {
		if diff := sums[int64(i)] - want.At(i); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("row %d: %v vs %v", i, sums[int64(i)], want.At(i))
		}
	}
}

func TestCoordTranspose(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	d := linalg.RandDense(3, 7, -1, 1, 10)
	if !FromDense(ctx, d, 2).Transpose().ToDense().Equal(d.Transpose()) {
		t.Fatal("coord transpose mismatch")
	}
}

// The motivating measurement for Section 5: coordinate-format multiply
// shuffles far more records than the tiled translation on the same
// data, because every element and every scalar product crosses the
// network individually.
func TestCoordShufflesMoreThanTiled(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	da := linalg.RandDense(12, 12, 0, 1, 11)
	db := linalg.RandDense(12, 12, 0, 1, 12)

	ctx.ResetMetrics()
	FromDense(ctx, da, 4).Multiply(FromDense(ctx, db, 4)).ToDense()
	coordRecords := ctx.Metrics().ShuffledRecords

	// Tiled multiply on the same data (4x4 tiles -> 3x3 grid).
	// Import cycle avoidance: compare against the known tile count
	// rather than calling the tiled package here; the cross-package
	// comparison lives in the bench harness.
	if coordRecords < int64(2*12*12) {
		t.Fatalf("coordinate multiply should shuffle at least every element of both inputs, got %d", coordRecords)
	}
}

// TestCoordFromDensePartitioning pins the Generate-based constructor
// to Parallelize's partition rules: clamped counts, balanced row-major
// slices, and no lost or duplicated elements.
func TestCoordFromDensePartitioning(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	d := linalg.RandDense(7, 3, -1, 1, 11)
	m := FromDense(ctx, d, 100) // more partitions than elements: clamp to 21
	if got := m.Entries.NumPartitions(); got != 21 {
		t.Fatalf("partitions = %d, want clamp to element count 21", got)
	}
	if !m.ToDense().Equal(d) {
		t.Fatal("clamped round trip")
	}
	if got := FromDense(ctx, linalg.NewDense(0, 0), 4).Entries.NumPartitions(); got != 1 {
		t.Fatalf("empty matrix should collapse to 1 partition, got %d", got)
	}
}

// TestOutOfCoreCoordMultiply runs the element-wise multiply translation
// under a budget small enough that its (notoriously heavy) shuffles
// spill, checking the coordinate-entry codecs end to end.
func TestOutOfCoreCoordMultiply(t *testing.T) {
	const budget = 256 << 10
	ctx := dataflow.NewContext(dataflow.Config{
		Parallelism:       4,
		DefaultPartitions: 8,
		MemoryBudget:      budget,
	})
	defer ctx.Close()
	da := linalg.RandDense(64, 64, -1, 1, 12)
	db := linalg.RandDense(64, 64, -1, 1, 13)
	got := FromDense(ctx, da, 8).Multiply(FromDense(ctx, db, 8)).ToDense()
	if !got.EqualApprox(linalg.Mul(da, db), 1e-9) {
		t.Fatal("out-of-core coordinate multiply diverges from local result")
	}
	if s := ctx.Metrics(); s.SpilledBytes == 0 || s.MergePasses == 0 {
		t.Fatalf("element-wise multiply over budget did not spill: %+v", s)
	}
}
