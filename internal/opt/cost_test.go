package opt

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// fakeProvider supplies fixed square-matrix statistics.
type fakeProvider struct {
	n        int64
	tile     int
	par      int
	adaptive bool
}

func (p fakeProvider) ArrayStats(string) (stats.TableStats, bool) {
	return stats.TableStats{Rows: p.n, Cols: p.n, Tile: p.tile, Density: 1}, true
}
func (p fakeProvider) Parallelism() int { return p.par }
func (p fakeProvider) Adaptive() bool   { return p.adaptive }

const matmulSrc = `tiled(6,6)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
        kk == k, let v = a*b, group by (i,j) ]`

func chooseStats(t *testing.T, src string, opts Options, prov StatsProvider) Strategy {
	t.Helper()
	s, err := ChooseWithStats(extract(t, src), opts, prov)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCostKeepsGBJ: GBJ materializes no intermediate tiles, so it is
// never Pareto-dominated and the paper's preferred translation must
// survive cost ranking on ANY machine shape — including low-core hosts
// where join+reduceByKey has fewer estimated shuffle bytes.
func TestCostKeepsGBJ(t *testing.T) {
	for _, par := range []int{1, 2, 8, 64} {
		s := chooseStats(t, matmulSrc, Options{}, fakeProvider{n: 800, tile: 100, par: par})
		gbj, ok := s.(*GroupByJoinStrategy)
		if !ok {
			t.Fatalf("par=%d: got %T", par, s)
		}
		if !gbj.UseGBJ {
			t.Fatalf("par=%d: cost ranking flipped UseGBJ off", par)
		}
		d := gbj.Decision
		if d == nil {
			t.Fatalf("par=%d: no decision attached", par)
		}
		if d.Chosen.Strategy != "summa-gbj" {
			t.Fatalf("par=%d: chose %q", par, d.Chosen.Strategy)
		}
		if len(d.Rejected) != 2 {
			t.Fatalf("par=%d: %d rejected candidates, want 2", par, len(d.Rejected))
		}
	}
}

// TestCostRespectsAblation: with GBJ disabled the decision must fall to
// join+reduceByKey and record why GBJ lost.
func TestCostRespectsAblation(t *testing.T) {
	s := chooseStats(t, matmulSrc, Options{DisableGBJ: true}, fakeProvider{n: 800, tile: 100, par: 8})
	gbj := s.(*GroupByJoinStrategy)
	if gbj.UseGBJ || !gbj.UseReduceBy {
		t.Fatalf("ablation ignored: UseGBJ=%v UseReduceBy=%v", gbj.UseGBJ, gbj.UseReduceBy)
	}
	d := gbj.Decision
	if d.Chosen.Strategy != "join+reduceByKey" {
		t.Fatalf("chose %q", d.Chosen.Strategy)
	}
	found := false
	for _, r := range d.Rejected {
		if r.Strategy == "summa-gbj" && r.Reason == "disabled" {
			found = true
		}
	}
	if !found {
		t.Fatalf("GBJ rejection not recorded as disabled: %+v", d.Rejected)
	}
}

// TestCostStaticLeavesKnobsAlone: without adaptive mode the decision
// prices candidates but must not reshape the physical plan.
func TestCostStaticLeavesKnobsAlone(t *testing.T) {
	s := chooseStats(t, matmulSrc, Options{}, fakeProvider{n: 3200, tile: 100, par: 4})
	d := s.(*GroupByJoinStrategy).Decision
	if d.GridP != 0 || d.GridQ != 0 || d.Parts != 0 {
		t.Fatalf("static mode set physical knobs: grid %dx%d parts %d", d.GridP, d.GridQ, d.Parts)
	}
}

// TestCostAdaptivePicksKnobs: in adaptive mode a large output must get
// a coarsened grid and an estimated partition count.
func TestCostAdaptivePicksKnobs(t *testing.T) {
	s := chooseStats(t, matmulSrc, Options{}, fakeProvider{n: 3200, tile: 100, par: 4, adaptive: true})
	d := s.(*GroupByJoinStrategy).Decision
	if d.GridP <= 0 || d.GridQ <= 0 {
		t.Fatalf("no grid picked: %dx%d", d.GridP, d.GridQ)
	}
	if d.GridP >= 32 || d.GridQ >= 32 {
		t.Fatalf("grid %dx%d not coarsened below the 32x32 output", d.GridP, d.GridQ)
	}
	if d.Parts <= 0 {
		t.Fatal("no partition count picked")
	}
	if d.Parts != stats.PickPartitions(32*32, 4) {
		t.Fatalf("parts %d disagrees with PickPartitions", d.Parts)
	}
}

// TestDecisionSummary: the Explain clause must name the chosen
// strategy, the rejected alternatives, and the estimates.
func TestDecisionSummary(t *testing.T) {
	s := chooseStats(t, matmulSrc, Options{}, fakeProvider{n: 800, tile: 100, par: 8, adaptive: true})
	sum := s.(*GroupByJoinStrategy).Decision.Summary()
	for _, want := range []string{"cost: summa-gbj", "shuffle", "rejected:", "join+reduceByKey", "join+groupByKey", "parts "} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
	var nilD *Decision
	if nilD.Summary() != "" {
		t.Fatal("nil decision must render empty")
	}
}

// TestCostTileAgg: the single-input aggregation decision prefers
// reduceByKey and flips only under the ablation flag.
func TestCostTileAgg(t *testing.T) {
	src := `tiledvec(6)[ (i, +/m) | ((i,j),m) <- M, group by i ]`
	s := chooseStats(t, src, Options{}, fakeProvider{n: 800, tile: 100, par: 8})
	agg, ok := s.(*TileAggStrategy)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if agg.Decision == nil || agg.Decision.Chosen.Strategy != "reduceByKey" {
		t.Fatalf("decision %+v", agg.Decision)
	}
	s2 := chooseStats(t, src, Options{DisableReduceByKey: true}, fakeProvider{n: 800, tile: 100, par: 8})
	d2 := s2.(*TileAggStrategy).Decision
	if d2.Chosen.Strategy != "groupByKey" {
		t.Fatalf("ablated decision chose %q", d2.Chosen.Strategy)
	}
}

// TestChooseWithStatsNilProvider: a nil provider degrades to plain
// Choose with no decision.
func TestChooseWithStatsNilProvider(t *testing.T) {
	s, err := ChooseWithStats(extract(t, matmulSrc), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.(*GroupByJoinStrategy).Decision; d != nil {
		t.Fatalf("nil provider attached a decision: %+v", d)
	}
}
