package opt

import (
	"fmt"
	"strings"

	"repro/internal/comp"
)

// Strategy is a chosen physical translation for a block-array
// comprehension.
type Strategy interface {
	Kind() string
	Describe() string
}

// AffineKey is one output key component of the restricted affine form
// the Rule 19 index-set analysis handles: (Var + Off) % Mod, with
// Mod == 0 meaning no modulus.
type AffineKey struct {
	Var string
	Off int64
	Mod int64
}

// Identity reports whether the component is the plain variable.
func (a AffineKey) Identity() bool { return a.Off == 0 && a.Mod == 0 }

func (a AffineKey) String() string {
	s := a.Var
	if a.Off > 0 {
		s = fmt.Sprintf("%s+%d", s, a.Off)
	} else if a.Off < 0 {
		s = fmt.Sprintf("%s%d", s, a.Off)
	}
	if a.Mod != 0 {
		s = fmt.Sprintf("(%s)%%%d", s, a.Mod)
	}
	return s
}

// MapStrategy: a single array generator whose output key is a
// permutation of its index variables — a narrow per-tile map
// (Rule 17 degenerate case; includes transpose via key permutation,
// and Rule 15 group-by elimination when an injective group-by was
// removed).
type MapStrategy struct {
	Gen       ArrayGen
	KeyPerm   []int // output key position -> index var position
	ValExpr   comp.Expr
	Lets      []comp.LetQual
	Filters   []comp.Expr
	ViaRule15 bool // true when an injective group-by was eliminated
}

// Kind identifies the strategy.
func (s *MapStrategy) Kind() string { return "tile-map" }

// Describe renders the Explain line.
func (s *MapStrategy) Describe() string {
	note := ""
	if s.ViaRule15 {
		note = " (group-by eliminated: injective key, Rule 15)"
	}
	perm := "identity"
	if !isIdentityPerm(s.KeyPerm) {
		perm = fmt.Sprintf("%v", s.KeyPerm)
	}
	return fmt.Sprintf("tiling-preserving map over %s, key permutation %s%s", s.Gen.Name, perm, note)
}

// ZipStrategy: two generators with all index variables equated — the
// Rule 17 join of tile datasets with a per-tile elementwise kernel
// (matrix addition shape).
type ZipStrategy struct {
	GenA, GenB ArrayGen
	ValExpr    comp.Expr
	Lets       []comp.LetQual
	Filters    []comp.Expr
}

// Kind identifies the strategy.
func (s *ZipStrategy) Kind() string { return "tile-zip" }

// Describe renders the Explain line.
func (s *ZipStrategy) Describe() string {
	return fmt.Sprintf("tiling-preserving join of %s and %s with elementwise kernel (Rule 17)", s.GenA.Name, s.GenB.Name)
}

// GroupByJoinStrategy: the Section 5.4 pattern — a join of two arrays
// followed by a group-by whose key pairs one surviving index from each
// side, with a monoid aggregation. Execution uses either the SUMMA
// group-by-join or the Section 5.3 join+reduceByKey, as configured.
type GroupByJoinStrategy struct {
	GenA, GenB   ArrayGen
	JoinA, JoinB int // positions of the contracted index vars
	OutA, OutB   int // positions of the surviving index vars
	Monoid       string
	CombineExpr  comp.Expr // h(a, b)
	Lets         []comp.LetQual
	UseGBJ       bool
	UseReduceBy  bool // false = groupByKey (ablation of Rule 13)
	// Decision, when non-nil, records the cost-model ranking that chose
	// (or confirmed) this translation; see ChooseWithStats.
	Decision *Decision
}

// Kind identifies the strategy.
func (s *GroupByJoinStrategy) Kind() string {
	if s.UseGBJ {
		return "group-by-join"
	}
	return "join-reduce"
}

// Describe renders the Explain line.
func (s *GroupByJoinStrategy) Describe() string {
	if s.UseGBJ {
		return fmt.Sprintf("SUMMA group-by-join of %s and %s (Section 5.4), monoid %s", s.GenA.Name, s.GenB.Name, s.Monoid)
	}
	shuffle := "reduceByKey (Rule 13)"
	if !s.UseReduceBy {
		shuffle = "groupByKey (Rule 13 disabled)"
	}
	return fmt.Sprintf("join of %s and %s on the contracted index, per-tile products, %s", s.GenA.Name, s.GenB.Name, shuffle)
}

// TileAggStrategy: one generator grouped by a subset of its index
// variables with monoid aggregations — per-tile partial aggregation
// followed by reduceByKey (Section 5.3; Figure 1 row sums). Multiple
// aggregations in the head run as one pass over a product monoid
// (Rule 12), finalized by FinalExpr over the hole variables.
type TileAggStrategy struct {
	Gen         ArrayGen
	KeyPos      []int // positions of the grouped index vars
	Aggs        []comp.Factored
	FinalExpr   comp.Expr
	Lets        []comp.LetQual
	Filters     []comp.Expr // element filters applied before aggregating
	UseReduceBy bool
	// Decision, when non-nil, records the cost-model ranking for the
	// aggregation's shuffle; see ChooseWithStats.
	Decision *Decision
}

// Kind identifies the strategy.
func (s *TileAggStrategy) Kind() string { return "tile-aggregate" }

// Describe renders the Explain line.
func (s *TileAggStrategy) Describe() string {
	shuffle := "reduceByKey (Rule 13)"
	if !s.UseReduceBy {
		shuffle = "groupByKey (Rule 13 disabled)"
	}
	names := make([]string, len(s.Aggs))
	for i, a := range s.Aggs {
		names[i] = a.Monoid
	}
	return fmt.Sprintf("per-tile partial {%s}-aggregation of %s grouped by %v, %s",
		strings.Join(names, ","), s.Gen.Name, s.KeyPos, shuffle)
}

// ReplicateStrategy: a single generator whose output key is affine but
// not a permutation — tiles are replicated to the destination index
// set I_f(K) and re-grouped (Rule 19).
type ReplicateStrategy struct {
	Gen     ArrayGen
	Keys    []AffineKey
	ValExpr comp.Expr
	Lets    []comp.LetQual
	Filters []comp.Expr
}

// Kind identifies the strategy.
func (s *ReplicateStrategy) Kind() string { return "tile-replicate" }

// Describe renders the Explain line.
func (s *ReplicateStrategy) Describe() string {
	ks := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		ks[i] = k.String()
	}
	return fmt.Sprintf("tile replication of %s to I_f(K) destinations for key (%s), group-by over tiles (Rule 19)",
		s.Gen.Name, strings.Join(ks, ", "))
}

// CoordStrategy: the Section 4 fallback — sparsify the inputs to
// coordinate entries and evaluate the comprehension element-wise on
// the dataflow engine.
type CoordStrategy struct {
	Info   *QueryInfo
	Reason string
}

// Kind identifies the strategy.
func (s *CoordStrategy) Kind() string { return "coordinate" }

// Describe renders the Explain line.
func (s *CoordStrategy) Describe() string {
	return fmt.Sprintf("coordinate-format fallback (Section 4): %s", s.Reason)
}

// Options steer strategy selection; the defaults enable every paper
// optimization. Disabling one reproduces the ablations.
type Options struct {
	// DisableGBJ turns off the Section 5.4 group-by-join, falling back
	// to join + reduceByKey (the paper's "SAC" multiplication line).
	DisableGBJ bool
	// DisableReduceByKey turns off Rule 13, using groupByKey for
	// aggregations (the unoptimized translation).
	DisableReduceByKey bool
	// DisableTilingPreservation turns off Rule 17 and Rule 19
	// specializations, forcing the coordinate fallback.
	DisableTilingPreservation bool
}

// Choose selects the physical strategy for an extracted query.
func Choose(info *QueryInfo, opts Options) (Strategy, error) {
	if opts.DisableTilingPreservation {
		return &CoordStrategy{Info: info, Reason: "tiling preservation disabled"}, nil
	}
	if info.GroupBy == nil {
		if s := chooseNonGrouped(info); s != nil {
			return s, nil
		}
		return &CoordStrategy{Info: info, Reason: "no block translation matched"}, nil
	}
	if s := chooseMatVec(info, opts); s != nil {
		return s, nil
	}
	if s := chooseGrouped(info, opts); s != nil {
		return s, nil
	}
	return &CoordStrategy{Info: info, Reason: "group-by shape outside block rules"}, nil
}

func chooseNonGrouped(info *QueryInfo) Strategy {
	keys, ok := affineKeyComponents(info.HeadKey)
	if !ok {
		return nil
	}
	u := info.varClasses()

	if len(info.Gens) == 1 && len(info.RangeGens) == 0 {
		g := info.Gens[0]
		// Try a permutation of the generator's index variables.
		if perm, ok := keyPermutation(keys, g.IndexVars, u); ok {
			return &MapStrategy{Gen: g, KeyPerm: perm, ValExpr: info.HeadVal,
				Lets: info.Lets, Filters: info.Filters}
		}
		// Rule 19 replication: affine keys over this generator's vars.
		if allVarsOf(keys, g.IndexVars, u) && len(keys) == len(g.IndexVars) {
			return &ReplicateStrategy{Gen: g, Keys: keys, ValExpr: info.HeadVal,
				Lets: info.Lets, Filters: info.Filters}
		}
		return nil
	}

	if len(info.Gens) == 2 && len(info.RangeGens) == 0 && len(info.Filters) == 0 {
		a, b := info.Gens[0], info.Gens[1]
		if len(a.IndexVars) != len(b.IndexVars) {
			return nil
		}
		// All index positions equated pairwise?
		for k := range a.IndexVars {
			if u.find(a.IndexVars[k]) != u.find(b.IndexVars[k]) {
				return nil
			}
		}
		if perm, ok := keyPermutation(keys, a.IndexVars, u); ok && isIdentityPerm(perm) {
			return &ZipStrategy{GenA: a, GenB: b, ValExpr: info.HeadVal, Lets: info.Lets}
		}
		return nil
	}
	return nil
}

func chooseGrouped(info *QueryInfo, opts Options) Strategy {
	u := info.varClasses()

	// Rule 15: if the group-by key covers every index variable of a
	// single generator, the key is unique and the group-by can be
	// eliminated — each group is a singleton.
	if len(info.Gens) == 1 && len(info.RangeGens) == 0 {
		g := info.Gens[0]
		if sameClasses(info.GroupBy, g.IndexVars, u) {
			keys, ok := affineKeyComponents(info.HeadKey)
			if !ok {
				return nil
			}
			if perm, ok := keyPermutation(keys, g.IndexVars, u); ok {
				return &MapStrategy{Gen: g, KeyPerm: perm,
					ValExpr: rewriteSingletonReductions(info.HeadVal),
					Lets:    info.Lets, Filters: info.Filters,
					ViaRule15: true}
			}
			return nil
		}
		// Aggregation grouped by a strict subset of index vars
		// (e.g. row sums grouped by i). Multiple head aggregations are
		// factored into one product-monoid pass (Rule 12).
		if keyPos, ok := subsetPositions(info.GroupBy, g.IndexVars, u); ok {
			lifted := map[string]bool{}
			for _, v := range g.IndexVars {
				lifted[v] = true
			}
			if g.ValueVar != "_" {
				lifted[g.ValueVar] = true
			}
			for _, l := range info.Lets {
				for _, v := range comp.PatternVars(l.Pat) {
					lifted[v] = true
				}
			}
			for _, k := range info.GroupBy {
				delete(lifted, u.find(k))
				delete(lifted, k)
			}
			aggs, final, ok := comp.FactorReductions(info.HeadVal, lifted)
			if !ok {
				return nil
			}
			for _, a := range aggs {
				if !scalarAggMonoid(a.Monoid) {
					return nil // e.g. avg: handled by the coordinate fallback
				}
			}
			// The finalize expression may reference the group key var.
			for v := range comp.FreeVars(final) {
				allowed := false
				for _, k := range info.GroupBy {
					if v == k {
						allowed = true
					}
				}
				if !allowed && !isHole(aggs, v) {
					return nil
				}
			}
			return &TileAggStrategy{Gen: g, KeyPos: keyPos,
				Aggs: aggs, FinalExpr: final,
				Lets: info.Lets, Filters: info.Filters,
				UseReduceBy: !opts.DisableReduceByKey}
		}
		return nil
	}

	// Section 5.4 group-by-join shape: two generators, one contracted
	// index pair, group key = one surviving index from each side.
	if len(info.Gens) == 2 && len(info.RangeGens) == 0 && len(info.Filters) == 0 &&
		len(info.GroupBy) == 2 && len(info.JoinConds) >= 1 {
		a, b := info.Gens[0], info.Gens[1]
		if len(a.IndexVars) != 2 || len(b.IndexVars) != 2 {
			return nil
		}
		monoid, val, ok := singleReduction(info.HeadVal)
		if !ok {
			return nil
		}
		// The block group-by-join kernels contract with +; other
		// monoids run through the coordinate fallback's Rule 12/13
		// machinery instead.
		if monoid != "+" {
			return nil
		}
		m, err := comp.LookupMonoid(monoid)
		if err != nil || !m.Commutative {
			return nil
		}
		// Locate the group-by vars on each side; the generator that
		// binds the first key component plays the A role (output
		// rows), swapping if the query listed the generators in the
		// other order.
		outA := positionOf(info.GroupBy[0], a.IndexVars, u)
		outB := positionOf(info.GroupBy[1], b.IndexVars, u)
		if outA < 0 || outB < 0 {
			outA = positionOf(info.GroupBy[0], b.IndexVars, u)
			outB = positionOf(info.GroupBy[1], a.IndexVars, u)
			if outA < 0 || outB < 0 {
				return nil
			}
			a, b = b, a
		}
		joinA, joinB := 1-outA, 1-outB
		// The remaining index vars must be equated by a join condition.
		if u.find(a.IndexVars[joinA]) != u.find(b.IndexVars[joinB]) {
			return nil
		}
		// The head key must be exactly the group-by pair.
		keys, ok := affineKeyComponents(info.HeadKey)
		if !ok || len(keys) != 2 || !keys[0].Identity() || !keys[1].Identity() {
			return nil
		}
		if u.find(keys[0].Var) != u.find(a.IndexVars[outA]) ||
			u.find(keys[1].Var) != u.find(b.IndexVars[outB]) {
			return nil
		}
		return &GroupByJoinStrategy{
			GenA: a, GenB: b,
			JoinA: joinA, JoinB: joinB,
			OutA: outA, OutB: outB,
			Monoid: monoid, CombineExpr: val, Lets: info.Lets,
			UseGBJ:      !opts.DisableGBJ,
			UseReduceBy: !opts.DisableReduceByKey,
		}
	}
	return nil
}

// --- helpers ---

// affineKeyComponents parses the output key into affine components.
// A non-tuple key is treated as a single component.
func affineKeyComponents(key comp.Expr) ([]AffineKey, bool) {
	var elems []comp.Expr
	if t, ok := key.(comp.TupleExpr); ok {
		elems = t.Elems
	} else {
		elems = []comp.Expr{key}
	}
	out := make([]AffineKey, len(elems))
	for i, e := range elems {
		a, ok := affineComponent(e)
		if !ok {
			return nil, false
		}
		out[i] = a
	}
	return out, true
}

func affineComponent(e comp.Expr) (AffineKey, bool) {
	switch x := e.(type) {
	case comp.Var:
		return AffineKey{Var: x.Name}, true
	case comp.BinOp:
		switch x.Op {
		case "+", "-":
			v, vok := x.L.(comp.Var)
			c, cok := x.R.(comp.Lit)
			if !vok || !cok {
				return AffineKey{}, false
			}
			off, ok := comp.AsInt(c.Val)
			if !ok {
				return AffineKey{}, false
			}
			if x.Op == "-" {
				off = -off
			}
			return AffineKey{Var: v.Name, Off: off}, true
		case "%":
			inner, ok := affineComponent(x.L)
			if !ok || inner.Mod != 0 {
				return AffineKey{}, false
			}
			c, cok := x.R.(comp.Lit)
			if !cok {
				return AffineKey{}, false
			}
			mod, ok := comp.AsInt(c.Val)
			if !ok || mod <= 0 {
				return AffineKey{}, false
			}
			inner.Mod = mod
			return inner, true
		}
	}
	return AffineKey{}, false
}

// keyPermutation checks that the key components are exactly the
// identity-affine index variables of the generator, in some order,
// and returns the permutation.
func keyPermutation(keys []AffineKey, indexVars []string, u *unionFind) ([]int, bool) {
	if len(keys) != len(indexVars) {
		return nil, false
	}
	perm := make([]int, len(keys))
	used := make([]bool, len(indexVars))
	for i, k := range keys {
		if !k.Identity() {
			return nil, false
		}
		found := -1
		for j, v := range indexVars {
			if !used[j] && u.find(v) == u.find(k.Var) {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		used[found] = true
		perm[i] = found
	}
	return perm, true
}

func isIdentityPerm(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// allVarsOf checks every key variable belongs to the generator's
// index classes.
func allVarsOf(keys []AffineKey, indexVars []string, u *unionFind) bool {
	for _, k := range keys {
		found := false
		for _, v := range indexVars {
			if u.find(v) == u.find(k.Var) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// sameClasses checks the two variable sets induce the same class set.
func sameClasses(a, b []string, u *unionFind) bool {
	if len(a) != len(b) {
		return false
	}
	ca := map[string]bool{}
	for _, v := range a {
		ca[u.find(v)] = true
	}
	for _, v := range b {
		if !ca[u.find(v)] {
			return false
		}
	}
	return true
}

// subsetPositions maps group-by vars to their positions in indexVars,
// requiring a strict subset.
func subsetPositions(groupVars, indexVars []string, u *unionFind) ([]int, bool) {
	if len(groupVars) >= len(indexVars) {
		return nil, false
	}
	pos := make([]int, len(groupVars))
	for i, gv := range groupVars {
		p := positionOf(gv, indexVars, u)
		if p < 0 {
			return nil, false
		}
		pos[i] = p
	}
	return pos, true
}

func positionOf(v string, indexVars []string, u *unionFind) int {
	for i, iv := range indexVars {
		if u.find(iv) == u.find(v) {
			return i
		}
	}
	return -1
}

// singleReduction matches head values of the form ⊕/e (optionally a
// bare lifted variable, which is ++/v per Section 3).
func singleReduction(e comp.Expr) (string, comp.Expr, bool) {
	if r, ok := e.(comp.Reduce); ok {
		return r.Monoid, r.E, true
	}
	return "", nil, false
}

// rewriteSingletonReductions rewrites reductions over singleton groups
// after Rule 15 group-by elimination: ⊕/x becomes x (count becomes 1,
// avg becomes x).
func rewriteSingletonReductions(e comp.Expr) comp.Expr {
	switch x := e.(type) {
	case comp.Reduce:
		inner := rewriteSingletonReductions(x.E)
		switch x.Monoid {
		case "count":
			return comp.Lit{Val: int64(1)}
		default:
			return inner
		}
	case comp.BinOp:
		return comp.BinOp{Op: x.Op, L: rewriteSingletonReductions(x.L), R: rewriteSingletonReductions(x.R)}
	case comp.UnaryOp:
		return comp.UnaryOp{Op: x.Op, E: rewriteSingletonReductions(x.E)}
	case comp.TupleExpr:
		elems := make([]comp.Expr, len(x.Elems))
		for i, s := range x.Elems {
			elems[i] = rewriteSingletonReductions(s)
		}
		return comp.TupleExpr{Elems: elems}
	case comp.Call:
		args := make([]comp.Expr, len(x.Args))
		for i, s := range x.Args {
			args[i] = rewriteSingletonReductions(s)
		}
		return comp.Call{Fn: x.Fn, Args: args}
	case comp.IfExpr:
		return comp.IfExpr{
			Cond: rewriteSingletonReductions(x.Cond),
			Then: rewriteSingletonReductions(x.Then),
			Else: rewriteSingletonReductions(x.Else),
		}
	default:
		return e
	}
}

// isHole reports whether v is one of the aggregation placeholders.
func isHole(aggs []comp.Factored, v string) bool {
	for _, a := range aggs {
		if a.Hole == v {
			return true
		}
	}
	return false
}

// scalarAggMonoid reports whether the tile-aggregation executor has a
// float accumulator for this monoid.
func scalarAggMonoid(name string) bool {
	switch name {
	case "+", "*", "min", "max", "count":
		return true
	}
	return false
}

// MatVecStrategy: the group-by-join shape with a vector operand —
// matrix-vector multiplication. Matrix tiles join vector blocks on the
// contracted index; partial result blocks reduce by destination.
type MatVecStrategy struct {
	MatGen, VecGen ArrayGen
	// JoinPos is the contracted matrix index position: 1 contracts
	// columns (y = M x), 0 contracts rows (y = M^T x).
	JoinPos     int
	Monoid      string
	CombineExpr comp.Expr
	Lets        []comp.LetQual
	UseReduceBy bool
}

// Kind identifies the strategy.
func (s *MatVecStrategy) Kind() string { return "matvec" }

// Describe renders the Explain line.
func (s *MatVecStrategy) Describe() string {
	form := "M x"
	if s.JoinPos == 0 {
		form = "M^T x"
	}
	return fmt.Sprintf("matrix-vector group-by-join of %s and %s (%s), per-block partials + reduceByKey",
		s.MatGen.Name, s.VecGen.Name, form)
}

// chooseMatVec matches the matrix-vector instance of the group-by-join
// shape: one 2-index generator, one 1-index generator, a join on the
// contracted index, group-by on the surviving matrix index.
func chooseMatVec(info *QueryInfo, opts Options) Strategy {
	if len(info.Gens) != 2 || len(info.RangeGens) != 0 || len(info.Filters) != 0 ||
		len(info.GroupBy) != 1 || len(info.JoinConds) < 1 {
		return nil
	}
	var mat, vec ArrayGen
	switch {
	case len(info.Gens[0].IndexVars) == 2 && len(info.Gens[1].IndexVars) == 1:
		mat, vec = info.Gens[0], info.Gens[1]
	case len(info.Gens[0].IndexVars) == 1 && len(info.Gens[1].IndexVars) == 2:
		mat, vec = info.Gens[1], info.Gens[0]
	default:
		return nil
	}
	monoid, val, ok := singleReduction(info.HeadVal)
	if !ok || monoid != "+" {
		return nil
	}
	u := info.varClasses()
	out := positionOf(info.GroupBy[0], mat.IndexVars, u)
	if out < 0 {
		return nil
	}
	join := 1 - out
	if u.find(mat.IndexVars[join]) != u.find(vec.IndexVars[0]) {
		return nil
	}
	keys, kok := affineKeyComponents(info.HeadKey)
	if !kok || len(keys) != 1 || !keys[0].Identity() ||
		u.find(keys[0].Var) != u.find(mat.IndexVars[out]) {
		return nil
	}
	return &MatVecStrategy{MatGen: mat, VecGen: vec, JoinPos: join,
		Monoid: monoid, CombineExpr: val, Lets: info.Lets,
		UseReduceBy: !opts.DisableReduceByKey}
}
