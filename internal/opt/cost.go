package opt

import (
	"fmt"
	"strings"

	"repro/internal/memory"
	"repro/internal/stats"
)

// This file adds the cost model on top of the structural strategy
// selection in strategy.go: Choose decides which translations are
// *applicable* (the paper's Rules 12-19), ChooseWithStats prices the
// applicable candidates with the internal/stats estimates and records
// the outcome — chosen estimate, rejected alternatives, and the
// physical knobs (SUMMA grid, reduce partition counts) derived from
// the statistics — in a Decision attached to the strategy, which
// Explain and sac -analyze render.

// StatsProvider supplies the estimation inputs at selection time;
// internal/plan's Catalog implements it over the registered arrays.
type StatsProvider interface {
	// ArrayStats returns size metadata for a registered array name.
	ArrayStats(name string) (stats.TableStats, bool)
	// Parallelism is the engine's concurrent-task budget.
	Parallelism() int
	// Adaptive reports whether statistics may reshape the physical plan
	// (coarsened SUMMA grids, estimated partition counts). When false —
	// static mode, and always under SPMD — the Decision still prices
	// the candidates but leaves the executors' fixed defaults in place.
	Adaptive() bool
}

// CostEstimate prices one candidate physical translation.
type CostEstimate struct {
	// Strategy names the candidate: "summa-gbj", "join+reduceByKey",
	// "join+groupByKey", "reduceByKey", "groupByKey".
	Strategy string
	// ShuffleBytes is the estimated volume crossing shuffle boundaries.
	ShuffleBytes int64
	// TempBytes is the estimated intermediate state materialized beyond
	// the inputs and output (the join strategies' partial-product tiles).
	TempBytes int64
	// Reason is empty for the chosen candidate; otherwise why it lost.
	Reason string
}

func (c CostEstimate) render() string {
	s := fmt.Sprintf("%s %s", c.Strategy, memory.FormatBytes(c.ShuffleBytes))
	if c.TempBytes > 0 {
		s += fmt.Sprintf("+%s temp", memory.FormatBytes(c.TempBytes))
	}
	if c.Reason != "" {
		s += " (" + c.Reason + ")"
	}
	return s
}

// Decision records why the optimizer picked the plan it did and which
// physical knobs the estimates chose. Attached to cost-ranked
// strategies; nil when no statistics were available.
type Decision struct {
	Chosen   CostEstimate
	Rejected []CostEstimate
	// GridP x GridQ is the SUMMA processor grid picked for a
	// group-by-join; 0,0 means the full output-tile grid (the static
	// default, exact SUMMA replication).
	GridP, GridQ int64
	// Parts is the reduce-side partition count picked from the output
	// cardinality estimate; 0 means the executor's fixed default.
	Parts int
	// Observed is non-empty when a session stats cache supplied
	// measured (rather than estimated) statistics for this query.
	Observed string
}

// Summary renders the decision as a single bracketed clause appended
// to Explain lines.
func (d *Decision) Summary() string {
	if d == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cost: %s est %s shuffle", d.Chosen.Strategy, memory.FormatBytes(d.Chosen.ShuffleBytes))
	if d.Chosen.TempBytes > 0 {
		fmt.Fprintf(&b, " +%s temp", memory.FormatBytes(d.Chosen.TempBytes))
	}
	if len(d.Rejected) > 0 {
		parts := make([]string, len(d.Rejected))
		for i, r := range d.Rejected {
			parts[i] = r.render()
		}
		fmt.Fprintf(&b, "; rejected: %s", strings.Join(parts, ", "))
	}
	if d.GridP > 0 && d.GridQ > 0 {
		fmt.Fprintf(&b, "; grid %dx%d", d.GridP, d.GridQ)
	}
	if d.Parts > 0 {
		fmt.Fprintf(&b, "; parts %d", d.Parts)
	}
	if d.Observed != "" {
		fmt.Fprintf(&b, "; stats: %s", d.Observed)
	}
	return b.String()
}

// ChooseWithStats selects the physical strategy like Choose, then —
// when a provider supplies input statistics — prices the applicable
// candidates, re-ranks the cost-sensitive choices within the ablation
// flags, and attaches the Decision. Ranking is by Pareto dominance
// over (shuffle bytes, temp bytes) with the paper's structural
// preference order as the tie-break, so a candidate is only displaced
// by one that is at least as good on both axes.
func ChooseWithStats(info *QueryInfo, opts Options, prov StatsProvider) (Strategy, error) {
	s, err := Choose(info, opts)
	if err != nil || prov == nil {
		return s, err
	}
	switch st := s.(type) {
	case *GroupByJoinStrategy:
		st.Decision = decideGroupByJoin(st, opts, prov)
	case *TileAggStrategy:
		st.Decision = decideTileAgg(st, opts, prov)
	}
	return s, nil
}

// dimAt maps an index-variable position to the array extent it ranges
// over: position 0 is the row index, position 1 the column index.
func dimAt(s stats.TableStats, pos int) int64 {
	if pos == 0 {
		return s.Rows
	}
	return s.Cols
}

func decideGroupByJoin(st *GroupByJoinStrategy, opts Options, prov StatsProvider) *Decision {
	sa, okA := prov.ArrayStats(st.GenA.Name)
	sb, okB := prov.ArrayStats(st.GenB.Name)
	if !okA || !okB || sa.Tile <= 0 || sb.Tile <= 0 {
		return nil
	}
	// Orient both inputs into the roles the estimator expects:
	// A-role = (output rows x contracted), B-role = (contracted x
	// output cols); OutA/OutB name which original axis survives, so
	// this also covers the transposed multiplies.
	aEff := stats.TableStats{Rows: dimAt(sa, st.OutA), Cols: dimAt(sa, st.JoinA), Tile: sa.Tile, Density: sa.Density}
	bEff := stats.TableStats{Rows: dimAt(sb, st.JoinB), Cols: dimAt(sb, st.OutB), Tile: sb.Tile, Density: sb.Density}
	par := prov.Parallelism()
	var gridP, gridQ int64
	if prov.Adaptive() {
		gridP, gridQ = stats.PickGrid(aEff, bEff, 2*par)
		if gridP == aEff.BlockRows() && gridQ == bEff.BlockCols() {
			gridP, gridQ = 0, 0 // full grid: the executor's exact default
		}
	}
	est := stats.EstimateMatmul(aEff, bEff, gridP, gridQ, 2*par)
	cands := []CostEstimate{
		{Strategy: "summa-gbj", ShuffleBytes: est.GBJShuffleBytes},
		{Strategy: "join+reduceByKey", ShuffleBytes: est.JoinShuffleBytes, TempBytes: est.JoinTempBytes},
		{Strategy: "join+groupByKey", ShuffleBytes: est.GroupByShuffleBytes, TempBytes: est.JoinTempBytes},
	}
	allowed := []bool{!opts.DisableGBJ, !opts.DisableReduceByKey, true}

	// Preference order is the candidate order; a candidate loses only
	// to an allowed one that dominates it (no worse on both axes).
	best := -1
	for i := range cands {
		if !allowed[i] {
			continue
		}
		dominated := false
		for j := range cands {
			if j != i && allowed[j] && dominates(cands[j], cands[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			best = i
			break
		}
	}
	if best < 0 {
		best = len(cands) - 1
	}
	st.UseGBJ = best == 0
	if !st.UseGBJ {
		st.UseReduceBy = best == 1
	}

	d := &Decision{Chosen: cands[best]}
	if st.UseGBJ {
		d.GridP, d.GridQ = gridP, gridQ
	}
	if prov.Adaptive() {
		d.Parts = stats.PickPartitions(est.OutTiles, par)
	}
	for i := range cands {
		if i == best {
			continue
		}
		r := cands[i]
		switch {
		case !allowed[i]:
			r.Reason = "disabled"
		case cands[best].ShuffleBytes > 0:
			r.Reason = fmt.Sprintf("%.1fx shuffle", float64(r.ShuffleBytes)/float64(cands[best].ShuffleBytes))
		}
		d.Rejected = append(d.Rejected, r)
	}
	return d
}

// dominates reports whether a is at least as cheap as b on both cost
// axes and strictly cheaper on one.
func dominates(a, b CostEstimate) bool {
	if a.ShuffleBytes > b.ShuffleBytes || a.TempBytes > b.TempBytes {
		return false
	}
	return a.ShuffleBytes < b.ShuffleBytes || a.TempBytes < b.TempBytes
}

func decideTileAgg(st *TileAggStrategy, opts Options, prov StatsProvider) *Decision {
	sm, ok := prov.ArrayStats(st.Gen.Name)
	if !ok || sm.Tile <= 0 {
		return nil
	}
	// Grouped output cardinality in blocks: the product of the kept
	// axes' block counts. Partial blocks carry Tile elements per kept
	// axis (a vector block for 1-D group keys).
	groups := int64(1)
	blockElems := int64(1)
	for _, pos := range st.KeyPos {
		if pos == 0 {
			groups *= sm.BlockRows()
		} else {
			groups *= sm.BlockCols()
		}
		blockElems *= int64(sm.Tile)
	}
	blockBytes := blockElems*8 + 16
	par := prov.Parallelism()
	rbk, gbk := stats.EstimateAggregate(sm, groups, 2*par, blockBytes)
	cands := []CostEstimate{
		{Strategy: "reduceByKey", ShuffleBytes: rbk},
		{Strategy: "groupByKey", ShuffleBytes: gbk},
	}
	best := 0
	if opts.DisableReduceByKey || !st.UseReduceBy {
		best = 1
	}
	d := &Decision{Chosen: cands[best]}
	if prov.Adaptive() {
		d.Parts = stats.PickPartitions(groups, par)
	}
	r := cands[1-best]
	if best == 1 {
		r.Reason = "disabled"
	} else if rbk > 0 {
		r.Reason = fmt.Sprintf("%.1fx shuffle", float64(gbk)/float64(rbk))
	}
	d.Rejected = append(d.Rejected, r)
	return d
}
