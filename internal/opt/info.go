// Package opt analyzes desugared array comprehensions and selects the
// physical translation strategy of Section 5: tiling-preserving join
// (Rule 17), replication with destination index sets I_f(K) (Rule 19),
// per-tile partial aggregation + reduceByKey (Section 5.3, Rule 13),
// the SUMMA-style group-by-join (Section 5.4), or the coordinate-format
// fallback (Section 4). The decisions are structural — they look only
// at generators, equality predicates, group-by keys and monoid
// reductions, never at linear-algebra operation names.
package opt

import (
	"fmt"

	"repro/internal/comp"
)

// ArrayGen is a generator over a named distributed array:
// ((i,j),v) <- A  or  (i,v) <- V.
type ArrayGen struct {
	Name      string   // array variable
	IndexVars []string // ["i","j"] for matrices, ["i"] for vectors
	ValueVar  string   // bound element value (may be "_")
}

// RangeGen is a generator over an integer range: i <- e1 until e2.
type RangeGen struct {
	Var string
	Src comp.Expr
}

// QueryInfo is the normalized structure of one comprehension body.
type QueryInfo struct {
	Gens      []ArrayGen
	RangeGens []RangeGen
	Lets      []comp.LetQual
	Filters   []comp.Expr // guards that are not var==var join conditions
	JoinConds [][2]string // equality predicates between index variables
	GroupBy   []string    // group-by key variables (nil when absent)
	HeadKey   comp.Expr
	HeadVal   comp.Expr
}

// Extract normalizes a desugared comprehension whose head is a
// (key, value) pair. It fails on shapes outside the calculus subset
// (nested group-bys, non-pair heads, exotic generators).
func Extract(c comp.Comprehension) (*QueryInfo, error) {
	head, ok := c.Head.(comp.TupleExpr)
	if !ok || len(head.Elems) != 2 {
		return nil, fmt.Errorf("opt: comprehension head must be a (key, value) pair, got %s", c.Head)
	}
	info := &QueryInfo{HeadKey: head.Elems[0], HeadVal: head.Elems[1]}

	indexVars := map[string]bool{}
	seenGroupBy := false
	for _, q := range c.Quals {
		switch qq := q.(type) {
		case comp.Generator:
			if seenGroupBy {
				return nil, fmt.Errorf("opt: generators after group-by are unsupported: %s", qq)
			}
			switch src := qq.Src.(type) {
			case comp.Var:
				g, err := parseArrayGen(src.Name, qq.Pat)
				if err != nil {
					return nil, err
				}
				info.Gens = append(info.Gens, *g)
				for _, v := range g.IndexVars {
					indexVars[v] = true
				}
			case comp.BinOp:
				if src.Op != "until" && src.Op != "to" {
					return nil, fmt.Errorf("opt: unsupported generator source %s", qq.Src)
				}
				pv, ok := qq.Pat.(comp.PVar)
				if !ok {
					return nil, fmt.Errorf("opt: range generator needs a variable pattern: %s", qq)
				}
				info.RangeGens = append(info.RangeGens, RangeGen{Var: pv.Name, Src: src})
				indexVars[pv.Name] = true
			default:
				return nil, fmt.Errorf("opt: unsupported generator source %s", qq.Src)
			}
		case comp.LetQual:
			info.Lets = append(info.Lets, qq)
		case comp.Guard:
			if a, b, ok := asVarEquality(qq.E); ok && indexVars[a] && indexVars[b] {
				info.JoinConds = append(info.JoinConds, [2]string{a, b})
			} else {
				info.Filters = append(info.Filters, qq.E)
			}
		case comp.GroupBy:
			if seenGroupBy {
				return nil, fmt.Errorf("opt: multiple group-bys are unsupported")
			}
			if qq.Of != nil {
				return nil, fmt.Errorf("opt: group by p : e must be desugared first")
			}
			seenGroupBy = true
			info.GroupBy = comp.PatternVars(qq.Pat)
		default:
			return nil, fmt.Errorf("opt: unknown qualifier %T", q)
		}
	}
	if len(info.Gens) == 0 {
		return nil, fmt.Errorf("opt: no distributed array generator")
	}
	return info, nil
}

// FuseRanges implements the paper's index-traversal merging
// (Section 2): a range generator whose variable is equated to an array
// generator's index variable is redundant when the range provably
// spans that array dimension — the traversal already enumerates those
// values. dimOf reports the extent of an array's index position; a
// range is fused only when its bounds are literal [0, dim). The join
// condition stays, keeping the variables unified for the strategy
// matchers.
func (info *QueryInfo) FuseRanges(dimOf func(array string, pos int) (int64, bool)) {
	u := info.varClasses()
	// For every class, the smallest array dimension it indexes.
	classDim := map[string]int64{}
	for _, g := range info.Gens {
		for pos, v := range g.IndexVars {
			dim, ok := dimOf(g.Name, pos)
			if !ok {
				continue
			}
			cls := u.find(v)
			if cur, seen := classDim[cls]; !seen || dim < cur {
				classDim[cls] = dim
			}
		}
	}
	var kept []RangeGen
	for _, r := range info.RangeGens {
		dim, linked := classDim[u.find(r.Var)]
		if linked && rangeSpans(r.Src, dim) {
			continue
		}
		kept = append(kept, r)
	}
	info.RangeGens = kept
}

// rangeSpans reports whether a literal range covers exactly [0, dim).
func rangeSpans(src comp.Expr, dim int64) bool {
	b, ok := src.(comp.BinOp)
	if !ok || (b.Op != "until" && b.Op != "to") {
		return false
	}
	lo, lok := b.L.(comp.Lit)
	hi, hok := b.R.(comp.Lit)
	if !lok || !hok {
		return false
	}
	loV, ok1 := comp.AsInt(lo.Val)
	hiV, ok2 := comp.AsInt(hi.Val)
	if !ok1 || !ok2 || loV != 0 {
		return false
	}
	if b.Op == "to" {
		hiV++
	}
	return hiV == dim
}

// parseArrayGen matches the patterns ((i,j),v) and (i,v).
func parseArrayGen(name string, p comp.Pattern) (*ArrayGen, error) {
	pt, ok := p.(comp.PTuple)
	if !ok || len(pt.Elems) != 2 {
		return nil, fmt.Errorf("opt: array generator pattern must be (index, value): %s", p)
	}
	valVar, ok := pt.Elems[1].(comp.PVar)
	if !ok {
		return nil, fmt.Errorf("opt: array value pattern must be a variable: %s", p)
	}
	switch idx := pt.Elems[0].(type) {
	case comp.PVar:
		return &ArrayGen{Name: name, IndexVars: []string{idx.Name}, ValueVar: valVar.Name}, nil
	case comp.PTuple:
		vars := make([]string, len(idx.Elems))
		for i, e := range idx.Elems {
			pv, ok := e.(comp.PVar)
			if !ok {
				return nil, fmt.Errorf("opt: nested index patterns unsupported: %s", p)
			}
			vars[i] = pv.Name
		}
		return &ArrayGen{Name: name, IndexVars: vars, ValueVar: valVar.Name}, nil
	default:
		return nil, fmt.Errorf("opt: bad index pattern %s", p)
	}
}

// asVarEquality matches guards of the form x == y on two variables.
func asVarEquality(e comp.Expr) (string, string, bool) {
	b, ok := e.(comp.BinOp)
	if !ok || b.Op != "==" {
		return "", "", false
	}
	l, lok := b.L.(comp.Var)
	r, rok := b.R.(comp.Var)
	if !lok || !rok {
		return "", "", false
	}
	return l.Name, r.Name, true
}

// unionFind groups index variables related by equality predicates.
type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		if !ok {
			u.parent[x] = x
		}
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// varClasses builds the equivalence classes of index variables induced
// by the join conditions.
func (info *QueryInfo) varClasses() *unionFind {
	u := newUnionFind()
	for _, g := range info.Gens {
		for _, v := range g.IndexVars {
			u.find(v)
		}
	}
	for _, r := range info.RangeGens {
		u.find(r.Var)
	}
	for _, jc := range info.JoinConds {
		u.union(jc[0], jc[1])
	}
	return u
}
