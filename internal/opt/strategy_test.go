package opt

import (
	"testing"

	"repro/internal/comp"
	"repro/internal/sacparser"
)

// extract parses and extracts the body of a builder query.
func extract(t *testing.T, src string) *QueryInfo {
	t.Helper()
	e := comp.Desugar(sacparser.MustParse(src))
	b, ok := e.(comp.BuildExpr)
	if !ok {
		t.Fatalf("not a builder: %s", e)
	}
	info, err := Extract(b.Body.(comp.Comprehension))
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func choose(t *testing.T, src string, opts Options) Strategy {
	t.Helper()
	s, err := Choose(extract(t, src), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExtractMatMul(t *testing.T) {
	info := extract(t, `tiled(6,6)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
	        kk == k, let v = a*b, group by (i,j) ]`)
	if len(info.Gens) != 2 {
		t.Fatalf("gens %d", len(info.Gens))
	}
	if info.Gens[0].Name != "A" || info.Gens[1].Name != "B" {
		t.Fatalf("gen names %v", info.Gens)
	}
	if len(info.JoinConds) != 1 || info.JoinConds[0] != [2]string{"kk", "k"} {
		t.Fatalf("join conds %v", info.JoinConds)
	}
	if len(info.GroupBy) != 2 {
		t.Fatalf("group by %v", info.GroupBy)
	}
	if len(info.Lets) != 1 {
		t.Fatalf("lets %d", len(info.Lets))
	}
}

func TestExtractRejectsOddShapes(t *testing.T) {
	for _, src := range []string{
		"[ x | x <- A ]", // head not a pair
		"[ (i, v) | (i,v) <- A, group by i, (j,w) <- B ]", // generator after group-by
	} {
		e := comp.Desugar(sacparser.MustParse(src))
		c := e.(comp.Comprehension)
		if _, err := Extract(c); err == nil {
			t.Fatalf("expected extract error for %q", src)
		}
	}
}

func TestChooseMatMulVariants(t *testing.T) {
	src := `tiled(6,6)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
	          kk == k, let v = a*b, group by (i,j) ]`
	if k := choose(t, src, Options{}).Kind(); k != "group-by-join" {
		t.Fatalf("default kind %s", k)
	}
	if k := choose(t, src, Options{DisableGBJ: true}).Kind(); k != "join-reduce" {
		t.Fatalf("no-GBJ kind %s", k)
	}
	if k := choose(t, src, Options{DisableTilingPreservation: true}).Kind(); k != "coordinate" {
		t.Fatalf("no-tiling kind %s", k)
	}
}

func TestChooseAddition(t *testing.T) {
	src := "tiled(6,6)[ ((i,j), a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]"
	s := choose(t, src, Options{})
	if s.Kind() != "tile-zip" {
		t.Fatalf("kind %s", s.Kind())
	}
}

func TestChooseTransposeAndMap(t *testing.T) {
	if k := choose(t, "tiled(6,6)[ ((j,i), a) | ((i,j),a) <- A ]", Options{}).Kind(); k != "tile-map" {
		t.Fatalf("transpose kind %s", k)
	}
	if k := choose(t, "tiled(6,6)[ ((i,j), a*2.0) | ((i,j),a) <- A ]", Options{}).Kind(); k != "tile-map" {
		t.Fatalf("map kind %s", k)
	}
}

func TestChooseRule15(t *testing.T) {
	s := choose(t, "tiled(6,6)[ ((i,j), +/a) | ((i,j),a) <- A, group by (i,j) ]", Options{})
	m, ok := s.(*MapStrategy)
	if !ok || !m.ViaRule15 {
		t.Fatalf("expected Rule 15 map, got %s", s.Describe())
	}
	// count over a singleton group becomes the literal 1.
	s2 := choose(t, "tiled(6,6)[ ((i,j), count(a)) | ((i,j),a) <- A, group by (i,j) ]", Options{})
	if s2.Kind() != "coordinate" {
		// count(x) is a Call, not a Reduce; the Rule 15 path rewrites
		// only after key analysis, so either result is acceptable as
		// long as it is semantically handled. Assert it chose a
		// strategy at all.
		if s2.Kind() != "tile-map" {
			t.Fatalf("count group-by kind %s", s2.Kind())
		}
	}
}

func TestChooseRowSums(t *testing.T) {
	s := choose(t, "tiledvec(6)[ (i, +/a) | ((i,j),a) <- A, group by i ]", Options{})
	agg, ok := s.(*TileAggStrategy)
	if !ok {
		t.Fatalf("kind %s", s.Kind())
	}
	if agg.KeyPos[0] != 0 || len(agg.Aggs) != 1 || agg.Aggs[0].Monoid != "+" {
		t.Fatalf("agg %+v", agg)
	}
	s2 := choose(t, "tiledvec(6)[ (j, max/a) | ((i,j),a) <- A, group by j ]", Options{})
	agg2 := s2.(*TileAggStrategy)
	if agg2.KeyPos[0] != 1 || len(agg2.Aggs) != 1 || agg2.Aggs[0].Monoid != "max" {
		t.Fatalf("agg2 %+v", agg2)
	}
}

func TestChooseAvgFallsBack(t *testing.T) {
	s := choose(t, "tiledvec(6)[ (i, avg/a) | ((i,j),a) <- A, group by i ]", Options{})
	if s.Kind() != "coordinate" {
		t.Fatalf("avg should fall back, got %s", s.Kind())
	}
}

func TestChooseRotation(t *testing.T) {
	s := choose(t, "tiled(6,6)[ (((i+1) % 6, j), a) | ((i,j),a) <- A ]", Options{})
	rep, ok := s.(*ReplicateStrategy)
	if !ok {
		t.Fatalf("kind %s", s.Kind())
	}
	if rep.Keys[0].Off != 1 || rep.Keys[0].Mod != 6 {
		t.Fatalf("affine key %+v", rep.Keys[0])
	}
	if !rep.Keys[1].Identity() {
		t.Fatalf("second key %+v", rep.Keys[1])
	}
}

func TestChooseMinPlusFallsBack(t *testing.T) {
	// Tropical matrix "multiplication" (min-plus) is a GBJ shape with
	// a non-+ monoid; it must run through the coordinate fallback.
	src := `tiled(6,6)[ ((i,j), min/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
	          kk == k, let v = a+b, group by (i,j) ]`
	if k := choose(t, src, Options{}).Kind(); k != "coordinate" {
		t.Fatalf("min-plus kind %s", k)
	}
}

func TestChooseSmoothingFallsBack(t *testing.T) {
	src := `tiled(4,4)[ ((ii,jj), +/a) | ((i,j),a) <- A,
	          ii <- (i-1) to (i+1), jj <- (j-1) to (j+1), group by (ii,jj) ]`
	if k := choose(t, src, Options{}).Kind(); k != "coordinate" {
		t.Fatalf("smoothing kind %s", k)
	}
}

func TestAffineComponentParsing(t *testing.T) {
	cases := []struct {
		src  string
		want AffineKey
		ok   bool
	}{
		{"i", AffineKey{Var: "i"}, true},
		{"i+3", AffineKey{Var: "i", Off: 3}, true},
		{"i-2", AffineKey{Var: "i", Off: -2}, true},
		{"(i+1) % 7", AffineKey{Var: "i", Off: 1, Mod: 7}, true},
		{"i % 4", AffineKey{Var: "i", Mod: 4}, true},
		{"i*2", AffineKey{}, false},
		{"i+j", AffineKey{}, false},
	}
	for _, c := range cases {
		e := sacparser.MustParse(c.src)
		got, ok := affineComponent(e)
		if ok != c.ok {
			t.Fatalf("%q ok=%v want %v", c.src, ok, c.ok)
		}
		if ok && got != c.want {
			t.Fatalf("%q = %+v want %+v", c.src, got, c.want)
		}
	}
}

func TestAffineKeyString(t *testing.T) {
	if got := (AffineKey{Var: "i", Off: 1, Mod: 6}).String(); got != "(i+1)%6" {
		t.Fatalf("affine string %q", got)
	}
	if got := (AffineKey{Var: "j", Off: -2}).String(); got != "j-2" {
		t.Fatalf("affine string %q", got)
	}
}

func TestUnionFindClasses(t *testing.T) {
	info := extract(t, "tiled(6,6)[ ((i,j), a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]")
	u := info.varClasses()
	if u.find("i") != u.find("ii") || u.find("j") != u.find("jj") {
		t.Fatal("join conditions not unified")
	}
	if u.find("i") == u.find("j") {
		t.Fatal("distinct axes merged")
	}
}

func TestDescribeStrings(t *testing.T) {
	src := `tiled(6,6)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
	          kk == k, let v = a*b, group by (i,j) ]`
	for _, c := range []struct {
		opts Options
		want string
	}{
		{Options{}, "SUMMA"},
		{Options{DisableGBJ: true}, "reduceByKey"},
		{Options{DisableGBJ: true, DisableReduceByKey: true}, "groupByKey"},
	} {
		d := choose(t, src, c.opts).Describe()
		if !contains(d, c.want) {
			t.Fatalf("describe %q missing %q", d, c.want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestChooseMatVecShapes(t *testing.T) {
	src := `tiledvec(6)[ (i, +/v) | ((i,k),a) <- A, (kk,x) <- V, kk == k, let v = a*x, group by i ]`
	s := choose(t, src, Options{})
	mv, ok := s.(*MatVecStrategy)
	if !ok {
		t.Fatalf("kind %s", s.Kind())
	}
	if mv.JoinPos != 1 {
		t.Fatalf("join pos %d", mv.JoinPos)
	}
	if !contains(mv.Describe(), "M x") {
		t.Fatalf("describe %q", mv.Describe())
	}
	// Transposed orientation.
	src2 := `tiledvec(4)[ (j, +/v) | ((k,j),a) <- A, (kk,x) <- V, kk == k, let v = a*x, group by j ]`
	mv2 := choose(t, src2, Options{}).(*MatVecStrategy)
	if mv2.JoinPos != 0 || !contains(mv2.Describe(), "M^T x") {
		t.Fatalf("trans matvec %+v", mv2)
	}
	// min monoid must not match matvec.
	src3 := `tiledvec(6)[ (i, min/v) | ((i,k),a) <- A, (kk,x) <- V, kk == k, let v = a*x, group by i ]`
	if k := choose(t, src3, Options{}).Kind(); k == "matvec" {
		t.Fatal("min contraction must not use matvec")
	}
}

func TestFuseRangesVerified(t *testing.T) {
	info := extract(t, `tiled(6,6)[ ((i,j), +/w) | ((i,k),a) <- A, j <- 0 until 6,
	          ((kk,jj),b) <- B, kk == k, jj == j, let w = a*b, group by (i,j) ]`)
	dims := func(name string, pos int) (int64, bool) {
		return 6, true // both matrices are 6x6
	}
	info.FuseRanges(dims)
	if len(info.RangeGens) != 0 {
		t.Fatalf("full-span range should fuse: %v", info.RangeGens)
	}
	// A narrower range must be kept.
	info2 := extract(t, `tiled(6,6)[ ((i,j), +/w) | ((i,k),a) <- A, j <- 0 until 3,
	          ((kk,jj),b) <- B, kk == k, jj == j, let w = a*b, group by (i,j) ]`)
	info2.FuseRanges(dims)
	if len(info2.RangeGens) != 1 {
		t.Fatal("narrow range must not fuse")
	}
	// Unknown dimensions: keep the range.
	info3 := extract(t, `tiled(6,6)[ ((i,j), +/w) | ((i,k),a) <- A, j <- 0 until 6,
	          ((kk,jj),b) <- B, kk == k, jj == j, let w = a*b, group by (i,j) ]`)
	info3.FuseRanges(func(string, int) (int64, bool) { return 0, false })
	if len(info3.RangeGens) != 1 {
		t.Fatal("unknown dims must not fuse")
	}
}

func TestStrategyDescribeAll(t *testing.T) {
	// Every strategy's Kind/Describe are exercised for diagnostics.
	cases := map[string]string{
		"tiled(6,6)[ ((j,i), a) | ((i,j),a) <- A ]":                                       "tile-map",
		"tiled(6,6)[ ((i,j), a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]": "tile-zip",
		"tiledvec(6)[ (i, +/a) | ((i,j),a) <- A, group by i ]":                            "tile-aggregate",
		"tiled(6,6)[ (((i+1) % 6, j), a) | ((i,j),a) <- A ]":                              "tile-replicate",
		"tiledvec(6)[ (i, avg/a) | ((i,j),a) <- A, group by i ]":                          "coordinate",
	}
	for src, kind := range cases {
		s := choose(t, src, Options{})
		if s.Kind() != kind {
			t.Fatalf("%q kind %s want %s", src, s.Kind(), kind)
		}
		if s.Describe() == "" {
			t.Fatalf("%q empty description", src)
		}
	}
}
