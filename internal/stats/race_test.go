package stats

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheConcurrentFeedback hammers one Cache from many goroutines
// mixing Record (the Query/Analyze feedback path), Lookup (the planner
// read path), and the aggregate readers — the shape of a session pool
// sharing a single profile cache. Run counts must survive the storm
// exactly; the -race build is the real assertion.
func TestCacheConcurrentFeedback(t *testing.T) {
	c := NewCache()
	const (
		writers = 8
		readers = 8
		queries = 4
		rounds  = 200
	)
	src := func(q int) string { return fmt.Sprintf("tiled(8,8)[ q%d ]", q) }
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := (w + r) % queries
				c.Record(src(q), Measured{WallNs: int64(r + 1), ShuffledBytes: int64(q * 100), MaxSkew: float64(r % 7)})
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := (g + r) % queries
				// Whitespace-variant source must hit the same entry.
				if m, ok := c.Lookup("  " + src(q) + "\n"); ok && m.Runs < 1 {
					t.Errorf("entry with zero runs: %+v", m)
					return
				}
				_ = c.Len()
				_ = c.TotalRuns()
			}
		}(g)
	}
	wg.Wait()
	if got := c.TotalRuns(); got != writers*rounds {
		t.Fatalf("lost updates under concurrency: %d runs recorded, want %d", got, writers*rounds)
	}
	if c.Len() != queries {
		t.Fatalf("cache has %d entries, want %d", c.Len(), queries)
	}
	// MaxSkew is merged with max(): the final value must be the largest
	// ever recorded for the key, whatever the interleaving.
	for q := 0; q < queries; q++ {
		m, ok := c.Lookup(src(q))
		if !ok {
			t.Fatalf("query %d missing", q)
		}
		if m.MaxSkew != 6 {
			t.Fatalf("query %d MaxSkew = %v, want 6 (max over rounds)", q, m.MaxSkew)
		}
	}
}
