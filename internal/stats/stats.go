// Package stats is the estimation layer under cost-based planning: it
// turns input metadata (dimensions, tile size, observed density) and
// the engine's measured signals (MetricsSnapshot, per-stage Dist
// histograms) into the cardinality, shuffle-volume, and FLOP estimates
// the optimizer ranks strategies with, and it picks the physical knobs
// — reduce-side partition counts and the SUMMA processor grid — that
// the planner previously hard-coded. A session-level Cache keeps
// measured per-query stats so repeated queries (k-means/factorization
// iterations) start from observation rather than estimation.
package stats

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/memory"
)

// TableStats is the size metadata of one input array.
type TableStats struct {
	Rows, Cols int64
	Tile       int // tile side N (vectors: block length)
	// Density is the observed nonzero fraction in [0,1]; 1 when unknown
	// (the engine stores dense tiles, so shuffle volume is density-
	// independent today, but FLOP estimates for the sparse path in
	// ROADMAP item 3 will not be).
	Density float64
}

// BlockRows is the number of tile rows.
func (t TableStats) BlockRows() int64 { return ceilDiv(t.Rows, int64(t.Tile)) }

// BlockCols is the number of tile columns.
func (t TableStats) BlockCols() int64 { return ceilDiv(t.Cols, int64(t.Tile)) }

// NumTiles is the tile cardinality of the array.
func (t TableStats) NumTiles() int64 { return t.BlockRows() * t.BlockCols() }

// TileBytes is the shuffle payload of one tile (dense float64 data
// plus the coordinate key).
func (t TableStats) TileBytes() int64 { return int64(t.Tile)*int64(t.Tile)*8 + 16 }

// TotalBytes is the materialized size of the whole array.
func (t TableStats) TotalBytes() int64 { return t.NumTiles() * t.TileBytes() }

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// MatmulEst holds the per-strategy cost estimates for one group-by-join
// shaped query (A[m,k] x B[k,n]): predicted shuffle bytes, bytes of
// intermediate tiles materialized outside the inputs/outputs, and the
// contraction FLOPs (shared by every strategy, since they compute the
// same products).
type MatmulEst struct {
	// GBJShuffleBytes is the SUMMA group-by-join volume on a p x q
	// processor grid: every A tile is replicated to q grid columns and
	// every B tile to p grid rows, and nothing else crosses the wire.
	GBJShuffleBytes int64
	// JoinShuffleBytes is the Section 5.3 join+reduceByKey volume: both
	// inputs cross the join shuffle once, then the partial-product
	// tiles cross the reduce shuffle — map-side combining caps them at
	// one tile per (map partition, output coordinate).
	JoinShuffleBytes int64
	// GroupByShuffleBytes is the Rule 13 ablation (groupByKey): every
	// partial-product tile crosses the shuffle uncombined.
	GroupByShuffleBytes int64
	// JoinTempBytes is the partial-product tiles the join strategies
	// materialize before reducing; the GBJ accumulates in place and
	// materializes nothing extra.
	JoinTempBytes int64
	// Flops is the contraction work, scaled by both densities.
	Flops float64
	// OutTiles is the output cardinality in tiles.
	OutTiles int64
}

// EstimateMatmul prices the strategies for A x B given the inputs,
// a p x q SUMMA grid (0 means the full output-tile grid), and the
// map-side parallelism (input partition count) that bounds the
// combiner's effectiveness.
func EstimateMatmul(a, b TableStats, gridP, gridQ int64, mapParts int) MatmulEst {
	brA, bcB := a.BlockRows(), b.BlockCols()
	bk := a.BlockCols() // contracted block count
	if gridP <= 0 || gridP > brA {
		gridP = brA
	}
	if gridQ <= 0 || gridQ > bcB {
		gridQ = bcB
	}
	outTiles := brA * bcB
	partials := brA * bcB * bk
	// Map-side combine folds partials per (map partition, out coord):
	// at most min(partials, mapParts * outTiles) tiles survive.
	combined := int64(mapParts) * outTiles
	if combined > partials || mapParts <= 0 {
		combined = partials
	}
	tb := a.TileBytes()
	if bt := b.TileBytes(); bt > tb {
		tb = bt
	}
	return MatmulEst{
		GBJShuffleBytes:     (a.NumTiles()*gridQ + b.NumTiles()*gridP) * tb,
		JoinShuffleBytes:    (a.NumTiles() + b.NumTiles() + combined) * tb,
		GroupByShuffleBytes: (a.NumTiles() + b.NumTiles() + partials) * tb,
		JoinTempBytes:       partials * tb,
		Flops:               2 * float64(a.Rows) * float64(a.Cols) * float64(b.Cols) * density(a) * density(b),
		OutTiles:            outTiles,
	}
}

// EstimateAggregate prices a grouped single-input aggregation
// (Section 5.3, row/col sums): reduceByKey shuffles one partial block
// per (map partition, group block), groupByKey one per input tile.
func EstimateAggregate(m TableStats, groups int64, mapParts int, blockBytes int64) (rbkBytes, gbkBytes int64) {
	partials := m.NumTiles() // one partial block per tile
	combined := int64(mapParts) * groups
	if combined > partials || mapParts <= 0 {
		combined = partials
	}
	return combined * blockBytes, partials * blockBytes
}

func density(t TableStats) float64 {
	if t.Density <= 0 || t.Density > 1 {
		return 1
	}
	return t.Density
}

// PickPartitions chooses a reduce-side partition count from the
// estimated output cardinality: about two waves per core (Spark's
// rule of thumb) but never more partitions than items to put in them.
func PickPartitions(items int64, parallelism int) int {
	if parallelism < 1 {
		parallelism = 1
	}
	p := int64(2 * parallelism)
	if items > 0 && p > items {
		p = items
	}
	if p < 1 {
		p = 1
	}
	return int(p)
}

// PickGrid chooses the SUMMA processor grid for an A[m,k] x B[k,n]
// group-by-join: the p x q grid (p over output tile rows, q over
// output tile columns) minimizing the replication volume
// tilesA*q + tilesB*p subject to p*q >= target cells (enough
// parallelism), p <= blockRows(A), q <= blockCols(B). Full replication
// (p = blockRows, q = blockCols) is today's behavior and the fallback
// whenever the output grid is already no larger than the target.
func PickGrid(a, b TableStats, target int) (p, q int64) {
	brA, bcB := a.BlockRows(), b.BlockCols()
	if brA < 1 {
		brA = 1
	}
	if bcB < 1 {
		bcB = 1
	}
	if target < 1 {
		target = 1
	}
	if brA*bcB <= int64(target) {
		return brA, bcB
	}
	ta, tbt := a.NumTiles(), b.NumTiles()
	bestP, bestQ := brA, bcB
	bestCost := ta*bcB + tbt*brA
	for cp := int64(1); cp <= brA; cp++ {
		cq := ceilDiv(int64(target), cp)
		if cq > bcB {
			continue
		}
		if cq < 1 {
			cq = 1
		}
		cost := ta*cq + tbt*cp
		if cost < bestCost || (cost == bestCost && cp*cq < bestP*bestQ) {
			bestP, bestQ, bestCost = cp, cq, cost
		}
	}
	return bestP, bestQ
}

// Measured is the observed execution profile of one query, fed back
// into planning on repeats.
type Measured struct {
	Runs          int64
	WallNs        int64 // most recent run
	ShuffledBytes int64
	Records       int64
	// MaxSkew is the worst per-stage task-duration p99/p50 observed.
	MaxSkew float64
	// PartRecords is the records-per-partition distribution of the most
	// skewed stage — the histogram adaptive rebalancing acts on.
	PartRecords dataflow.Dist
}

// String renders the profile compactly for Explain annotations.
func (m Measured) String() string {
	s := fmt.Sprintf("observed %d run(s), %v wall, %s shuffled",
		m.Runs, time.Duration(m.WallNs).Round(time.Millisecond), memory.FormatBytes(m.ShuffledBytes))
	if m.MaxSkew > 0 {
		s += fmt.Sprintf(", task skew %.1fx", m.MaxSkew)
	}
	return s
}

// Cache is a store of measured query stats, keyed by the normalized
// query source. Safe for concurrent use from any number of sessions:
// the server's session pool shares one cache so every pooled session
// plans against the whole fleet's observations, which makes Lookup a
// concurrent hot path — reads take only the read lock, and Record's
// read-merge-write runs entirely under the write lock so two sessions
// finishing the same query never lose a run count.
type Cache struct {
	mu sync.RWMutex
	m  map[string]Measured
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[string]Measured{}} }

// Key normalizes query source for cache lookup: whitespace runs
// collapse so reformatted repeats of the same query share an entry.
func Key(src string) string { return strings.Join(strings.Fields(src), " ") }

// Lookup returns the measured stats for a query, if any.
func (c *Cache) Lookup(src string) (Measured, bool) {
	if c == nil {
		return Measured{}, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.m[Key(src)]
	return m, ok
}

// Record merges one run's observations into the entry for src.
func (c *Cache) Record(src string, m Measured) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.m[Key(src)]
	m.Runs = prev.Runs + 1
	if m.MaxSkew < prev.MaxSkew {
		m.MaxSkew = prev.MaxSkew
	}
	c.m[Key(src)] = m
}

// FromSnapshot extracts a Measured profile from a metrics diff
// (typically MetricsSnapshot.Sub around one query execution).
func FromSnapshot(s dataflow.MetricsSnapshot, wallNs int64) Measured {
	m := Measured{
		WallNs:        wallNs,
		ShuffledBytes: s.ShuffledBytes,
		Records:       s.ShuffledRecords,
	}
	for _, st := range s.PerStage {
		if sk := st.TaskDur.Skew(); sk > m.MaxSkew {
			m.MaxSkew = sk
			m.PartRecords = st.PartRecords
		}
	}
	return m
}

// Len reports the number of cached queries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// TotalRuns sums the recorded run counts over every cached query — a
// cheap fleet-wide activity figure for status endpoints.
func (c *Cache) TotalRuns() int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, m := range c.m {
		n += m.Runs
	}
	return n
}
