package stats

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
)

func sq(n int64, tile int) TableStats {
	return TableStats{Rows: n, Cols: n, Tile: tile, Density: 1}
}

func TestTableStatsBlocks(t *testing.T) {
	s := TableStats{Rows: 250, Cols: 100, Tile: 100}
	if s.BlockRows() != 3 || s.BlockCols() != 1 {
		t.Fatalf("blocks: %dx%d, want 3x1", s.BlockRows(), s.BlockCols())
	}
	if s.TileBytes() != 100*100*8+16 {
		t.Fatalf("tile bytes %d", s.TileBytes())
	}
	if s.NumTiles() != 3 {
		t.Fatalf("num tiles %d", s.NumTiles())
	}
}

func TestEstimateMatmulFullGrid(t *testing.T) {
	a, b := sq(400, 100), sq(400, 100) // 4x4 blocks each
	est := EstimateMatmul(a, b, 0, 0, 8)
	tb := a.TileBytes()
	// Full grid: every A tile to 4 grid cols, every B tile to 4 rows.
	if want := (16*4 + 16*4) * tb; est.GBJShuffleBytes != want {
		t.Fatalf("GBJ bytes %d, want %d", est.GBJShuffleBytes, want)
	}
	// join: both inputs once + combined partials (min(4*4*4, 8*16)=64).
	if want := (16 + 16 + 64) * tb; est.JoinShuffleBytes != want {
		t.Fatalf("join bytes %d, want %d", est.JoinShuffleBytes, want)
	}
	// With 4x4 blocks the combiner cannot help (64 partials vs a
	// 128-slot combine budget), so the two reduce flavors tie; on a
	// deeper contraction the combiner wins.
	if est.GroupByShuffleBytes != est.JoinShuffleBytes {
		t.Fatal("uncombinable shape: flavors should tie")
	}
	deep := EstimateMatmul(sq(800, 100), sq(800, 100), 0, 0, 4)
	if deep.GroupByShuffleBytes <= deep.JoinShuffleBytes {
		t.Fatal("groupByKey estimate must exceed combined reduceByKey on a deep contraction")
	}
	if est.JoinTempBytes != 64*tb {
		t.Fatalf("temp bytes %d", est.JoinTempBytes)
	}
	if est.OutTiles != 16 {
		t.Fatalf("out tiles %d", est.OutTiles)
	}
}

func TestEstimateMatmulCoarseGridCheaper(t *testing.T) {
	a, b := sq(1600, 100), sq(1600, 100) // 16x16 blocks
	full := EstimateMatmul(a, b, 0, 0, 8)
	coarse := EstimateMatmul(a, b, 4, 4, 8)
	if coarse.GBJShuffleBytes >= full.GBJShuffleBytes {
		t.Fatalf("coarse grid (%d) not cheaper than full (%d)",
			coarse.GBJShuffleBytes, full.GBJShuffleBytes)
	}
}

func TestPickPartitions(t *testing.T) {
	if got := PickPartitions(1000, 8); got != 16 {
		t.Fatalf("PickPartitions(1000, 8) = %d, want 16", got)
	}
	if got := PickPartitions(3, 8); got != 3 {
		t.Fatalf("never more partitions than items: got %d", got)
	}
	if got := PickPartitions(0, 0); got < 1 {
		t.Fatalf("must stay positive: got %d", got)
	}
}

func TestPickGrid(t *testing.T) {
	a, b := sq(1600, 100), sq(1600, 100) // 16x16 output blocks
	p, q := PickGrid(a, b, 16)
	if p*q < 16 {
		t.Fatalf("grid %dx%d under target", p, q)
	}
	if p > a.BlockRows() || q > b.BlockCols() {
		t.Fatalf("grid %dx%d exceeds output blocks", p, q)
	}
	// Square inputs: replication is symmetric, so the minimizer is the
	// balanced grid.
	if p != 4 || q != 4 {
		t.Fatalf("grid %dx%d, want 4x4", p, q)
	}
	// Small output: full grid fallback.
	a2, b2 := sq(200, 100), sq(200, 100)
	p2, q2 := PickGrid(a2, b2, 16)
	if p2 != a2.BlockRows() || q2 != b2.BlockCols() {
		t.Fatalf("small output should use the full grid, got %dx%d", p2, q2)
	}
}

func TestCacheRecordLookup(t *testing.T) {
	c := NewCache()
	if _, ok := c.Lookup("q"); ok {
		t.Fatal("empty cache hit")
	}
	c.Record("tiled(2,2)[ x ]", Measured{WallNs: 100, MaxSkew: 2})
	c.Record("tiled(2,2)[  x ]", Measured{WallNs: 50, MaxSkew: 1}) // same query, reformatted
	m, ok := c.Lookup(" tiled(2,2)[ x ] ")
	if !ok {
		t.Fatal("normalized lookup missed")
	}
	if m.Runs != 2 {
		t.Fatalf("runs %d, want 2 (normalized keys must merge)", m.Runs)
	}
	if m.WallNs != 50 {
		t.Fatalf("wall %d, want most recent 50", m.WallNs)
	}
	if m.MaxSkew != 2 {
		t.Fatalf("skew %v, want max-so-far 2", m.MaxSkew)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	c.Record("q", Measured{})
	if _, ok := c.Lookup("q"); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache len")
	}
}

func TestFromSnapshotPicksMostSkewedStage(t *testing.T) {
	snap := dataflow.MetricsSnapshot{
		ShuffledBytes:   123,
		ShuffledRecords: 7,
		PerStage: []dataflow.StageMetric{
			{Name: "even", TaskDur: dataflow.Dist{N: 4, P50: 10, P99: 12},
				PartRecords: dataflow.Dist{N: 4, Max: 5}},
			{Name: "skewed", TaskDur: dataflow.Dist{N: 4, P50: 10, P99: 90},
				PartRecords: dataflow.Dist{N: 4, Max: 40}},
		},
	}
	m := FromSnapshot(snap, 55)
	if m.WallNs != 55 || m.ShuffledBytes != 123 || m.Records != 7 {
		t.Fatalf("totals wrong: %+v", m)
	}
	if m.MaxSkew != 9 {
		t.Fatalf("skew %v, want 9", m.MaxSkew)
	}
	if m.PartRecords.Max != 40 {
		t.Fatalf("picked wrong stage's histogram: %+v", m.PartRecords)
	}
}

func TestMeasuredString(t *testing.T) {
	s := Measured{Runs: 3, WallNs: 2_000_000, ShuffledBytes: 1 << 20, MaxSkew: 4.5}.String()
	for _, want := range []string{"3 run(s)", "2ms", "skew 4.5x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing %q", s, want)
		}
	}
}
