package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition checks that r is well-formed Prometheus text
// exposition format (version 0.0.4): every line is a # HELP / # TYPE
// comment or a `name[{labels}] value [timestamp]` sample, TYPE
// declarations name a known metric type, and every sample's metric
// name is a legal identifier. It returns the number of samples seen.
// This is the smoke check CI runs against a live /debug/metrics.
func ValidateExposition(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := map[string]string{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 {
					return samples, fmt.Errorf("obs: line %d: HELP without metric name", lineNo)
				}
			case "TYPE":
				if len(fields) < 4 {
					return samples, fmt.Errorf("obs: line %d: TYPE needs name and type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validMetricName(name) {
			return samples, fmt.Errorf("obs: line %d: bad metric name %q", lineNo, name)
		}
		rest = strings.TrimSpace(rest)
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return samples, fmt.Errorf("obs: line %d: unterminated label set", lineNo)
			}
			rest = strings.TrimSpace(rest[end+1:])
		}
		val := rest
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			val = rest[:i] // a timestamp may follow the value
		}
		if val == "" {
			return samples, fmt.Errorf("obs: line %d: sample %q has no value", lineNo, name)
		}
		switch val {
		case "+Inf", "-Inf", "NaN":
		default:
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return samples, fmt.Errorf("obs: line %d: bad sample value %q: %v", lineNo, val, err)
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("obs: exposition contains no samples")
	}
	return samples, nil
}

// validMetricName reports whether s is a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*). Histogram series suffixes (_bucket,
// _sum, _count) are ordinary names under this rule.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
