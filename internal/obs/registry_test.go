package obs

import (
	"math"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sac_test_ops_total", "ops")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("sac_test_bytes", "bytes")
	g.Set(100)
	g.Add(-30)
	if got := g.Value(); got != 70 {
		t.Fatalf("gauge = %d, want 70", got)
	}
	// Same name returns the same instrument.
	if r.Counter("sac_test_ops_total", "ops") != c {
		t.Fatal("counter lookup is not canonical")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sac_test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("sac_test_x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sac_test_dur_seconds", "dur", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("sum = %g, want 5.605", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`sac_test_dur_seconds_bucket{le="0.01"} 1`,
		`sac_test_dur_seconds_bucket{le="0.1"} 3`,
		`sac_test_dur_seconds_bucket{le="1"} 4`,
		`sac_test_dur_seconds_bucket{le="+Inf"} 5`,
		`sac_test_dur_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sac_test_off_total", "")
	h := r.Histogram("sac_test_off_seconds", "", []float64{1})
	c.Add(5)
	r.SetEnabled(false)
	c.Add(5)
	h.Observe(0.5)
	if c.Value() != 5 {
		t.Fatalf("disabled counter moved: %d", c.Value())
	}
	if h.Count() != 0 {
		t.Fatalf("disabled histogram observed: %d", h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 6 {
		t.Fatalf("re-enabled counter = %d, want 6", c.Value())
	}
}

func TestGaugeFuncScrapesCallback(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("sac_test_live", "live value", func() float64 { return v })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sac_test_live 1.5") {
		t.Fatalf("gauge func not scraped:\n%s", b.String())
	}
	// Re-registering replaces the callback.
	r.GaugeFunc("sac_test_live", "live value", func() float64 { return 9 })
	b.Reset()
	_ = r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "sac_test_live 9") {
		t.Fatalf("replaced gauge func not scraped:\n%s", b.String())
	}
}

func TestExpositionValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("sac_test_a_total", "a counter").Add(3)
	r.Gauge("sac_test_b", "a gauge").Set(-7)
	r.Histogram("sac_test_c_seconds", "a histogram", DefSecondsBuckets).Observe(0.2)
	r.GaugeFunc("sac_test_d", "a gauge func", func() float64 { return 0.25 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	// 1 counter + 1 gauge + (len(buckets)+1 bucket lines + sum + count) + 1 gauge func
	want := 1 + 1 + (len(DefSecondsBuckets) + 1 + 2) + 1
	if n != want {
		t.Fatalf("%d samples, want %d:\n%s", n, want, b.String())
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",                                      // no samples
		"9metric 1\n",                           // bad name
		"sac_x notanumber\n",                    // bad value
		"sac_x{le=\"0.1\" 1\n",                  // unterminated labels
		"# TYPE sac_x frobnitz\n" + "sac_x 1\n", // unknown type
		"sac_x\n",                               // no value
	} {
		if _, err := ValidateExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// TestRegistryConcurrentHammer drives every instrument kind from many
// goroutines while a scraper renders the exposition — the race-mode
// guarantee the dataflow layers rely on when concurrent stages bump
// shared counters mid-scrape.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	// Register up front so the scraper never sees an empty exposition.
	r.Counter("sac_test_hammer_total", "")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("sac_test_hammer_total", "")
			g := r.Gauge("sac_test_hammer_gauge", "")
			h := r.Histogram("sac_test_hammer_seconds", "", []float64{0.001, 0.01, 0.1})
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if _, err := ValidateExposition(strings.NewReader(b.String())); err != nil {
				t.Errorf("mid-hammer exposition invalid: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("sac_test_hammer_total", "").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("sac_test_hammer_seconds", "", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestValidateScrapeFile is a CI hook, not a unit test: when
// SAC_SCRAPE_FILE names a file (a curl of a live /debug/metrics
// endpoint), it must be a well-formed Prometheus text exposition with
// at least one sample. Without the env var it is skipped.
func TestValidateScrapeFile(t *testing.T) {
	path := os.Getenv("SAC_SCRAPE_FILE")
	if path == "" {
		t.Skip("SAC_SCRAPE_FILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := ValidateExposition(f)
	if err != nil {
		t.Fatalf("scrape %s is not valid exposition: %v", path, err)
	}
	if n == 0 {
		t.Fatalf("scrape %s has no samples", path)
	}
	t.Logf("%s: %d valid samples", path, n)
}
