// Package obs is the engine's metrics registry: named counters,
// gauges, and histograms with atomic hot paths, exported in Prometheus
// text exposition format from the /debug/metrics endpoint of both CLIs.
//
// The registry is process-wide (the Default registry) because the
// quantities it tracks — stages run, bytes shuffled and spilled, wire
// traffic served to peers — are process-level facts: a worker process
// is one scrape target, whatever sessions it runs. Instruments are
// resolved once (package-level vars or a one-time lookup), so the hot
// path is a single atomic add with no map access and no allocation;
// when the registry is disabled every instrument method is one atomic
// load and an early return, keeping the tracing/metrics-off cost at the
// one-pointer-check bar the span tracer set.
//
// Naming follows the Prometheus conventions: sac_<layer>_<what>_<unit>
// with a _total suffix on counters (sac_dataflow_shuffled_bytes_total,
// sac_cluster_wire_fetched_bytes_total, sac_memory_used_bytes).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Add is one atomic add
// (plus one atomic enabled-load); the zero value is usable but
// unregistered — use Registry.Counter.
type Counter struct {
	v   atomic.Int64
	reg *Registry
}

// Add increments the counter by d (no-op when the registry is
// disabled; negative deltas are ignored to keep counters monotone).
func (c *Counter) Add(d int64) {
	if c == nil || !c.reg.enabled() || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (bytes in use, live
// workers).
type Gauge struct {
	v   atomic.Int64
	reg *Registry
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.reg.enabled() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (either sign).
func (g *Gauge) Add(d int64) {
	if g == nil || !g.reg.enabled() {
		return
	}
	g.v.Add(d)
}

// Value reports the gauge's current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-boundary distribution of observed values.
// Observe is a linear scan over ~16 boundaries plus two atomic adds —
// no allocation, safe from any number of goroutines.
type Histogram struct {
	reg     *Registry
	bounds  []float64 // upper bounds, ascending; +Inf implied
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.reg.enabled() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefSecondsBuckets covers durations from 100µs to ~100s in roughly
// half-decade steps — wide enough for both tile kernels and whole
// distributed stages.
var DefSecondsBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// instrument is one registered metric with its metadata.
type instrument struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram", "gaugefunc"
	c    *Counter
	g    *Gauge
	h    *Histogram
	f    func() float64
}

// Registry owns a namespace of instruments. The zero value is not
// usable; use NewRegistry or the package Default.
type Registry struct {
	mu   sync.Mutex
	by   map[string]*instrument
	offQ atomic.Bool // true = disabled: instruments early-return
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*instrument)}
}

// Default is the process-wide registry the engine layers register into
// and the debug endpoints export.
var Default = NewRegistry()

// enabled is the hot-path gate; nil registries read as disabled.
func (r *Registry) enabled() bool { return r != nil && !r.offQ.Load() }

// SetEnabled turns the whole registry on or off. Disabled instruments
// cost one atomic load per call and record nothing; the exposition
// still serves whatever was recorded before the switch.
func (r *Registry) SetEnabled(on bool) { r.offQ.Store(!on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.enabled() }

// lookup returns the named instrument, creating it with make when
// absent; it panics when the name is already registered as a different
// kind — that is an init-order bug, not a runtime condition.
func (r *Registry) lookup(name, help, kind string, make func() *instrument) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.by[name]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("obs: %s already registered as a %s, requested as %s", name, in.kind, kind))
		}
		return in
	}
	in := make()
	in.name, in.help, in.kind = name, help, kind
	r.by[name] = in
	return in
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	in := r.lookup(name, help, "counter", func() *instrument {
		return &instrument{c: &Counter{reg: r}}
	})
	return in.c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	in := r.lookup(name, help, "gauge", func() *instrument {
		return &instrument{g: &Gauge{reg: r}}
	})
	return in.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering a name replaces the callback (a fresh session takes
// over the live gauge).
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	in := r.lookup(name, help, "gaugefunc", func() *instrument { return &instrument{} })
	r.mu.Lock()
	in.f = f
	r.mu.Unlock()
}

// Histogram returns the named histogram with the given upper bounds
// (ascending; a +Inf bucket is implicit), registering it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	in := r.lookup(name, help, "histogram", func() *instrument {
		h := &Histogram{reg: r, bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Int64, len(bounds)+1)
		return &instrument{h: h}
	})
	return in.h
}

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format (version 0.0.4), sorted by name so
// output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.by))
	for _, in := range r.by {
		ins = append(ins, in)
	}
	r.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].name < ins[j].name })
	var b strings.Builder
	for _, in := range ins {
		if in.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", in.name, strings.ReplaceAll(in.help, "\n", " "))
		}
		switch in.kind {
		case "counter":
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", in.name, in.name, in.c.Value())
		case "gauge":
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", in.name, in.name, in.g.Value())
		case "gaugefunc":
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", in.name, in.name, formatFloat(in.f()))
		case "histogram":
			fmt.Fprintf(&b, "# TYPE %s histogram\n", in.name)
			var cum int64
			for i, bound := range in.h.bounds {
				cum += in.h.buckets[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", in.name, formatFloat(bound), cum)
			}
			cum += in.h.buckets[len(in.h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", in.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", in.name, formatFloat(in.h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", in.name, in.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
