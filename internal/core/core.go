// Package core is the public API of the SAC reproduction: a session
// that owns a simulated cluster, a catalog of named distributed
// arrays, and Query/Explain entry points that run the full pipeline —
// parse, desugar, strategy selection (Rules 13/15/17/19 and the
// Section 5.4 group-by-join), and execution on the dataflow engine.
//
// A minimal program:
//
//	s := core.NewSession(core.Config{})
//	s.RegisterRandMatrix("M", 1000, 1000, 0, 10, 1)
//	res, err := s.Query("tiledvec(1000)[ (i, +/m) | ((i,j),m) <- M, group by i ]")
package core

import (
	"fmt"
	"time"

	"repro/internal/comp"
	"repro/internal/dataflow"
	"repro/internal/diablo"
	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/sacparser"
	"repro/internal/stats"
	"repro/internal/tiled"
)

// Config selects the cluster simulation and tiling parameters.
type Config struct {
	// Parallelism is the simulated executor-core count (default:
	// GOMAXPROCS).
	Parallelism int
	// Partitions is the default dataset partition count.
	Partitions int
	// TileSize is the block dimension N for registered arrays
	// (default 100; the paper used 1000 on a cluster).
	TileSize int
	// Optimizations can disable individual paper optimizations for
	// ablation studies; the zero value enables everything.
	Optimizations opt.Options
	// FailureRate injects task failures to exercise lineage recovery.
	FailureRate float64
	// FailureSeed seeds failure injection.
	FailureSeed int64
	// MemoryBudget bounds tracked engine memory (shuffle buckets and
	// Persist caches); work beyond it spills to disk. <= 0 disables
	// the budget. The SAC_MEMORY_BUDGET environment variable supplies
	// it when callers use memory.BudgetFromEnv.
	MemoryBudget int64
	// SpillDir overrides where spill run files are written (default: a
	// fresh directory under os.TempDir, removed on Close).
	SpillDir string
	// ShuffleCostNsPerByte charges simulated serialization/network
	// time per shuffled byte (see dataflow.Config).
	ShuffleCostNsPerByte float64
	// AdaptiveShuffle turns on statistics-driven execution: shuffle
	// boundaries rebalance skewed partitions at stage granularity, the
	// cost model's estimated grids/partition counts reshape physical
	// plans, and measured query profiles feed back into repeat
	// compilations. Local-only — a session with a Transport ignores it,
	// because SPMD ranks must build byte-identical plans.
	AdaptiveShuffle bool
	// AdaptiveSkewFactor is the hot-partition threshold (hot when its
	// row count exceeds factor x median); 0 uses the engine default.
	AdaptiveSkewFactor float64
	// AdaptiveMinRows is the minimum hot-partition row count worth
	// rebalancing; 0 uses the engine default.
	AdaptiveMinRows int
	// Transport, when non-nil, makes this session one rank of a
	// multi-process SPMD cluster: it runs the tasks it owns and
	// exchanges shuffle buckets with its peers through the transport
	// (see dataflow.Config.Transport and internal/cluster). nil is
	// unchanged local execution.
	Transport dataflow.Transport
	// DisableStreamFetch forces whole-blob shuffle fetches even on a
	// streaming-capable transport (see dataflow.Config.DisableStreamFetch).
	DisableStreamFetch bool
	// WorkerTag names this process in distributed diagnostics (span
	// attributes, per-worker metric rows).
	WorkerTag string
	// StatsCache, when non-nil, is shared with other sessions instead of
	// this session owning a private one: every session's measured query
	// profiles land in (and are planned from) the same store. The server
	// pool uses this so a query observed on one pooled session improves
	// the plan costing on all of them. stats.Cache is safe for
	// concurrent use.
	StatsCache *stats.Cache
}

// Session is the top-level handle; safe for sequential use.
type Session struct {
	conf  Config
	ctx   *dataflow.Context
	cat   *plan.Catalog
	stats *stats.Cache
}

// NewSession creates a session with its own simulated cluster.
func NewSession(conf Config) *Session {
	if conf.TileSize <= 0 {
		conf.TileSize = 100
	}
	ctx := dataflow.NewContext(dataflow.Config{
		Parallelism:       conf.Parallelism,
		DefaultPartitions: conf.Partitions,
		FailureRate:       conf.FailureRate,
		FailureSeed:       conf.FailureSeed,
		MemoryBudget:      conf.MemoryBudget,
		SpillDir:          conf.SpillDir,

		AdaptiveShuffle:    conf.AdaptiveShuffle,
		AdaptiveSkewFactor: conf.AdaptiveSkewFactor,
		AdaptiveMinRows:    conf.AdaptiveMinRows,

		ShuffleCostNsPerByte: conf.ShuffleCostNsPerByte,
		Transport:            conf.Transport,
		DisableStreamFetch:   conf.DisableStreamFetch,
		WorkerTag:            conf.WorkerTag,
	})
	sc := conf.StatsCache
	if sc == nil {
		sc = stats.NewCache()
	}
	return &Session{conf: conf, ctx: ctx,
		cat: plan.NewCatalog(ctx).SetStatsCache(sc), stats: sc}
}

// StatsCache exposes the session-level measured-statistics cache that
// repeat compilations of the same query consult.
func (s *Session) StatsCache() *stats.Cache { return s.stats }

// Close releases session resources (spill files, if any). Queries must
// not run after Close.
func (s *Session) Close() error { return s.ctx.Close() }

// Engine exposes the underlying dataflow context (metrics, etc.).
func (s *Session) Engine() *dataflow.Context { return s.ctx }

// TileSize returns the session's block dimension.
func (s *Session) TileSize() int { return s.conf.TileSize }

// RegisterMatrix binds an existing tiled matrix.
func (s *Session) RegisterMatrix(name string, m *tiled.Matrix) {
	s.cat.BindMatrix(name, m)
}

// RegisterVector binds an existing tiled vector.
func (s *Session) RegisterVector(name string, v *tiled.Vector) {
	s.cat.BindVector(name, v)
}

// RegisterDense tiles and distributes a driver-side dense matrix.
func (s *Session) RegisterDense(name string, d *linalg.Dense) *tiled.Matrix {
	m := tiled.FromDense(s.ctx, d, s.conf.TileSize, 0)
	s.cat.BindMatrix(name, m)
	return m
}

// RegisterRandMatrix creates and binds a rows x cols matrix with
// uniform values in [lo, hi), generated distributedly from seed.
func (s *Session) RegisterRandMatrix(name string, rows, cols int64, lo, hi float64, seed int64) *tiled.Matrix {
	m := tiled.RandMatrix(s.ctx, rows, cols, s.conf.TileSize, 0, lo, hi, seed)
	s.cat.BindMatrix(name, m)
	return m
}

// RegisterSparse distributes a sparse COO matrix as a (dense-tiled)
// block matrix, the storage the paper's evaluation uses for the
// factorization input R.
func (s *Session) RegisterSparse(name string, c *linalg.COO) *tiled.Matrix {
	m := tiled.FromDense(s.ctx, c.ToDense(), s.conf.TileSize, 0)
	s.cat.BindMatrix(name, m)
	return m
}

// RegisterScalar binds a scalar constant usable in queries (e.g.
// dimensions).
func (s *Session) RegisterScalar(name string, v comp.Value) {
	s.cat.BindScalar(name, v)
}

// Compile parses and plans a query without running it.
func (s *Session) Compile(src string) (*plan.Compiled, error) {
	e, err := sacparser.Parse(src)
	if err != nil {
		return nil, err
	}
	return plan.Compile(e, s.cat, s.conf.Optimizations)
}

// Query parses, plans, and executes a SAC query. Each run's measured
// profile (wall time, shuffled bytes, worst task skew) is recorded in
// the session stats cache, so a repeat compilation of the same source
// sees the observation in its Decision. Tiled results are lazy — only
// stages forced during Execute are captured here; Analyze forces the
// result and measures it completely.
func (s *Session) Query(src string) (*plan.Result, error) {
	q, err := s.Compile(src)
	if err != nil {
		return nil, err
	}
	before := s.ctx.Metrics()
	start := time.Now()
	res, err := q.Execute()
	if err != nil {
		return nil, err
	}
	q.NoteObserved(stats.FromSnapshot(s.ctx.Metrics().Sub(before), time.Since(start).Nanoseconds()))
	return res, nil
}

// QueryMatrix runs a query that must produce a tiled matrix.
func (s *Session) QueryMatrix(src string) (*tiled.Matrix, error) {
	res, err := s.Query(src)
	if err != nil {
		return nil, err
	}
	if res.Matrix == nil {
		return nil, fmt.Errorf("core: query produced a %s, not a matrix", res.Kind())
	}
	return res.Matrix, nil
}

// QueryVector runs a query that must produce a tiled vector.
func (s *Session) QueryVector(src string) (*tiled.Vector, error) {
	res, err := s.Query(src)
	if err != nil {
		return nil, err
	}
	if res.Vector == nil {
		return nil, fmt.Errorf("core: query produced a %s, not a vector", res.Kind())
	}
	return res.Vector, nil
}

// QueryScalar runs a total-aggregation query.
func (s *Session) QueryScalar(src string) (comp.Value, error) {
	res, err := s.Query(src)
	if err != nil {
		return nil, err
	}
	if res.Kind() != "scalar" {
		return nil, fmt.Errorf("core: query produced a %s, not a scalar", res.Kind())
	}
	return res.Scalar, nil
}

// Explain returns the chosen physical translation of a query.
func (s *Session) Explain(src string) (string, error) {
	q, err := s.Compile(src)
	if err != nil {
		return "", err
	}
	return q.Explain(), nil
}

// Analyze compiles and runs a query with tracing enabled and returns
// the EXPLAIN ANALYZE-style report: the chosen plan annotated with the
// measured per-stage table (wall time, records, shuffled bytes, skew)
// and the full span tree of the execution.
func (s *Session) Analyze(src string) (string, error) {
	q, err := s.Compile(src)
	if err != nil {
		return "", err
	}
	_, report, err := q.Analyze()
	return report, err
}

// EvalLocal evaluates a query with the single-node reference
// evaluator (Sections 2-3 semantics) against local storages.
func EvalLocal(src string, bindings map[string]comp.Value) (comp.Value, error) {
	e, err := sacparser.Parse(src)
	if err != nil {
		return nil, err
	}
	var env *comp.Env
	for k, v := range bindings {
		env = env.Bind(k, v)
	}
	return comp.Eval(e, env)
}

// Metrics returns a snapshot of the engine counters (shuffled bytes,
// tasks, stages).
func (s *Session) Metrics() dataflow.MetricsSnapshot { return s.ctx.Metrics() }

// ResetMetrics zeroes the engine counters.
func (s *Session) ResetMetrics() { s.ctx.ResetMetrics() }

// RunLoops parses a DIABLO loop program, translates it to SAC
// comprehensions, executes the assignments against this session's
// catalog (binding each result for later statements and queries), and
// returns the chosen plans.
func (s *Session) RunLoops(src string) ([]string, error) {
	prog, err := diablo.Parse(src)
	if err != nil {
		return nil, err
	}
	return diablo.RunDistributed(prog, s.cat, s.conf.Optimizations)
}
