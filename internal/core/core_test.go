package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/comp"
	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/stats"
	"repro/internal/tiled"
)

func TestSessionQuickstart(t *testing.T) {
	s := NewSession(Config{TileSize: 4})
	d := linalg.RandDense(10, 10, 0, 10, 1)
	s.RegisterDense("M", d)
	v, err := s.QueryVector("tiledvec(10)[ (i, +/m) | ((i,j),m) <- M, group by i ]")
	if err != nil {
		t.Fatal(err)
	}
	if !v.ToDense().EqualApprox(d.RowSums(), 1e-9) {
		t.Fatal("row sums mismatch")
	}
}

func TestSessionMatMulAndExplain(t *testing.T) {
	s := NewSession(Config{TileSize: 3})
	da := linalg.RandDense(6, 6, 0, 2, 2)
	db := linalg.RandDense(6, 6, 0, 2, 3)
	s.RegisterDense("A", da)
	s.RegisterDense("B", db)
	src := `tiled(6,6)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
	          kk == k, let v = a*b, group by (i,j) ]`
	ex, err := s.Explain(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "SUMMA") {
		t.Fatalf("expected SUMMA plan: %s", ex)
	}
	m, err := s.QueryMatrix(src)
	if err != nil {
		t.Fatal(err)
	}
	if !m.ToDense().EqualApprox(linalg.Mul(da, db), 1e-9) {
		t.Fatal("matmul mismatch")
	}
}

func TestSessionAblationOptions(t *testing.T) {
	s := NewSession(Config{TileSize: 3, Optimizations: opt.Options{DisableGBJ: true}})
	s.RegisterRandMatrix("A", 6, 6, 0, 1, 4)
	s.RegisterRandMatrix("B", 6, 6, 0, 1, 5)
	ex, err := s.Explain(`tiled(6,6)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
	          kk == k, let v = a*b, group by (i,j) ]`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ex, "SUMMA") {
		t.Fatalf("GBJ should be disabled: %s", ex)
	}
}

func TestSessionScalarQuery(t *testing.T) {
	s := NewSession(Config{TileSize: 4})
	d := linalg.RandDense(8, 8, 0, 1, 6)
	s.RegisterDense("M", d)
	got, err := s.QueryScalar("+/[ m | ((i,j),m) <- M ]")
	if err != nil {
		t.Fatal(err)
	}
	if diff := comp.MustFloat(got) - d.Sum(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum %v vs %v", got, d.Sum())
	}
}

func TestSessionScalarBindings(t *testing.T) {
	s := NewSession(Config{TileSize: 4})
	d := linalg.RandDense(8, 6, 0, 1, 7)
	s.RegisterDense("M", d)
	s.RegisterScalar("n", int64(8))
	s.RegisterScalar("m", int64(6))
	mt, err := s.QueryMatrix("tiled(m, n)[ ((j,i), v) | ((i,j),v) <- M ]")
	if err != nil {
		t.Fatal(err)
	}
	if !mt.ToDense().Equal(d.Transpose()) {
		t.Fatal("transpose with scalar dims mismatch")
	}
}

func TestSessionWrongKind(t *testing.T) {
	s := NewSession(Config{TileSize: 4})
	s.RegisterRandMatrix("M", 8, 8, 0, 1, 8)
	if _, err := s.QueryVector("tiled(8,8)[ ((i,j), m) | ((i,j),m) <- M ]"); err == nil {
		t.Fatal("expected kind mismatch error")
	}
	if _, err := s.QueryMatrix("tiledvec(8)[ (i, +/m) | ((i,j),m) <- M, group by i ]"); err == nil {
		t.Fatal("expected kind mismatch error")
	}
}

func TestSessionParseError(t *testing.T) {
	s := NewSession(Config{})
	if _, err := s.Query("tiled(2,2)[ broken"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSessionRegisterSparse(t *testing.T) {
	s := NewSession(Config{TileSize: 4})
	c := linalg.RandSparseCOO(9, 9, 0.2, 5, 9)
	m := s.RegisterSparse("R", c)
	if !m.ToDense().Equal(c.ToDense()) {
		t.Fatal("sparse registration mismatch")
	}
}

func TestSessionMetrics(t *testing.T) {
	s := NewSession(Config{TileSize: 4})
	s.RegisterRandMatrix("A", 8, 8, 0, 1, 10)
	s.RegisterRandMatrix("B", 8, 8, 0, 1, 11)
	s.ResetMetrics()
	m, err := s.QueryMatrix("tiled(8,8)[ ((i,j), a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]")
	if err != nil {
		t.Fatal(err)
	}
	m.ToDense() // results are lazy; force the computation
	if s.Metrics().Shuffles == 0 {
		t.Fatal("no shuffle recorded for the addition join")
	}
}

// TestSessionCostExplain: Explain must show the cost-model decision —
// chosen strategy, estimated bytes, and the rejected alternatives.
func TestSessionCostExplain(t *testing.T) {
	s := NewSession(Config{TileSize: 3})
	s.RegisterRandMatrix("A", 6, 6, 0, 2, 2)
	s.RegisterRandMatrix("B", 6, 6, 0, 2, 3)
	ex, err := s.Explain(`tiled(6,6)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
	          kk == k, let v = a*b, group by (i,j) ]`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[cost: summa-gbj", "shuffle", "rejected:"} {
		if !strings.Contains(ex, want) {
			t.Fatalf("Explain missing %q:\n%s", want, ex)
		}
	}
}

// TestSessionStatsFeedback: after a query runs, re-planning the same
// source must pick up the measured statistics from the session cache.
func TestSessionStatsFeedback(t *testing.T) {
	s := NewSession(Config{TileSize: 3})
	da := linalg.RandDense(6, 6, 0, 2, 2)
	db := linalg.RandDense(6, 6, 0, 2, 3)
	s.RegisterDense("A", da)
	s.RegisterDense("B", db)
	src := `tiled(6,6)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
	          kk == k, let v = a*b, group by (i,j) ]`
	if ex, _ := s.Explain(src); strings.Contains(ex, "observed") {
		t.Fatalf("cold plan claims observed stats:\n%s", ex)
	}
	m, err := s.QueryMatrix(src)
	if err != nil {
		t.Fatal(err)
	}
	m.ToDense() // results are lazy; force the computation
	if s.StatsCache().Len() == 0 {
		t.Fatal("query did not feed the session stats cache")
	}
	ex, err := s.Explain(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "observed 1 run(s)") {
		t.Fatalf("warm plan missing measured stats:\n%s", ex)
	}
}

// TestSessionAdaptiveLocalOnly: the adaptive knob reshapes local plans
// (a picked partition count appears in the decision) and must never be
// derivable for SPMD sessions — Adaptive() is false once a transport is
// configured, regardless of the config flag.
func TestSessionAdaptivePicksParts(t *testing.T) {
	s := NewSession(Config{TileSize: 3, AdaptiveShuffle: true})
	s.RegisterRandMatrix("A", 6, 6, 0, 2, 2)
	s.RegisterRandMatrix("B", 6, 6, 0, 2, 3)
	src := `tiled(6,6)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
	          kk == k, let v = a*b, group by (i,j) ]`
	ex, err := s.Explain(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "parts ") {
		t.Fatalf("adaptive session did not pick a partition count:\n%s", ex)
	}
	m, err := s.QueryMatrix(src)
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive execution must stay exact: rebuild the inputs
	// deterministically and compare against the dense product.
	refA := tiled.RandMatrix(s.ctx, 6, 6, 3, 0, 0, 2, 2).ToDense()
	refB := tiled.RandMatrix(s.ctx, 6, 6, 3, 0, 0, 2, 3).ToDense()
	if !m.ToDense().EqualApprox(linalg.Mul(refA, refB), 1e-9) {
		t.Fatal("adaptive matmul diverged from reference")
	}
}

func TestEvalLocal(t *testing.T) {
	d := linalg.NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	got, err := EvalLocal("vector(2)[ (i, +/m) | ((i,j),m) <- M, group by i ]",
		map[string]comp.Value{"M": comp.MatrixStorage{M: d}})
	if err != nil {
		t.Fatal(err)
	}
	vs := got.(comp.VectorStorage)
	if !vs.V.Equal(linalg.NewVectorFrom([]float64{3, 7})) {
		t.Fatalf("local row sums %v", vs.V.Data)
	}
}

func TestSessionFailureInjection(t *testing.T) {
	s := NewSession(Config{TileSize: 2, Partitions: 9, FailureRate: 0.4, FailureSeed: 12})
	d := linalg.RandDense(6, 6, 0, 1, 13)
	s.RegisterDense("M", d)
	v, err := s.QueryVector("tiledvec(6)[ (i, +/m) | ((i,j),m) <- M, group by i ]")
	if err != nil {
		t.Fatal(err)
	}
	if !v.ToDense().EqualApprox(d.RowSums(), 1e-9) {
		t.Fatal("row sums under failure injection mismatch")
	}
	if s.Metrics().TaskFailures == 0 {
		t.Fatal("no failures injected")
	}
}

func TestSessionRegisterTiledDirect(t *testing.T) {
	s := NewSession(Config{TileSize: 3})
	m := tiled.RandMatrix(s.Engine(), 6, 6, 3, 0, 0, 1, 14)
	s.RegisterMatrix("X", m)
	v := tiled.VectorFromDense(s.Engine(), linalg.RandVector(6, 0, 1, 15), 3, 0)
	s.RegisterVector("V", v)
	got, err := s.QueryVector("tiledvec(6)[ (i, x*2.0) | (i,x) <- V ]")
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().EqualApprox(v.ToDense().ScaleInPlace(2), 1e-12) {
		t.Fatal("vector scale mismatch")
	}
}

// RunLoops: the DIABLO entry point on the session, end to end.
func TestSessionRunLoops(t *testing.T) {
	s := NewSession(Config{TileSize: 3})
	d := linalg.RandDense(6, 6, 0, 5, 21)
	s.RegisterDense("M", d)
	s.RegisterScalar("n", int64(6))
	plans, err := s.RunLoops(`
var V: vector[n];
for i = 0, n-1 do
    for j = 0, n-1 do
        V[i] += M[i, j];
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || !strings.Contains(plans[0], "V <-") {
		t.Fatalf("plans %v", plans)
	}
	// The loop result is bound in the catalog for follow-up queries.
	got, err := s.QueryScalar("+/[ v | (i,v) <- V ]")
	if err != nil {
		t.Fatal(err)
	}
	if diff := comp.MustFloat(got) - d.Sum(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("total %v vs %v", got, d.Sum())
	}
}

// Explain for coordinate plans reports the derived pipeline.
func TestSessionExplainCoordinateDetail(t *testing.T) {
	s := NewSession(Config{TileSize: 3})
	s.RegisterRandMatrix("A", 6, 6, 0, 5, 22)
	s.RegisterScalar("n", int64(6))
	ex, err := s.Explain(`tiledvec(n)[ (i, avg/a) | ((i,j),a) <- A, group by i ]`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "generator") || !strings.Contains(ex, "reduceByKey") {
		t.Fatalf("coordinate detail missing: %s", ex)
	}
}

// Sessions given one Config.StatsCache share profile feedback: a query
// measured on any of them informs planning on all, even when they run
// concurrently (the server's pooled-session arrangement).
func TestSessionsShareStatsCache(t *testing.T) {
	shared := stats.NewCache()
	sessions := make([]*Session, 3)
	for i := range sessions {
		s := NewSession(Config{TileSize: 4, StatsCache: shared})
		defer s.Close()
		s.RegisterRandMatrix("M", 8, 8, 0, 1, int64(i+1))
		if s.StatsCache() != shared {
			t.Fatal("session did not adopt the shared cache")
		}
		sessions[i] = s
	}
	// One goroutine per session (sessions are sequential-use); the
	// sessions themselves run concurrently against the shared cache.
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				if _, err := s.QueryScalar("+/[ m | ((i,j),m) <- M ]"); err != nil {
					t.Error(err)
				}
			}
		}(s)
	}
	wg.Wait()
	if shared.Len() != 1 {
		t.Fatalf("shared cache entries = %d, want 1 (same query text)", shared.Len())
	}
	if shared.TotalRuns() != 12 {
		t.Fatalf("shared cache runs = %d, want 12", shared.TotalRuns())
	}
}
