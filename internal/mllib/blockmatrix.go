// Package mllib re-implements the Spark MLlib linalg.distributed
// BlockMatrix baseline the paper evaluates against (Section 6):
// grid-partitioned dense blocks with add via cogroup and multiply via
// partition-granular block replication (simulateMultiply) followed by
// local products and reduceByKey.
//
// Substitution note: the paper ran MLlib on the pure-JVM Breeze
// implementation (no native BLAS). Breeze's local gemm is a competent
// single-threaded kernel, so the baseline uses the same blocked local
// kernel as the SAC side but pinned to a budget of 1 goroutine
// (linalg.GemmBudget(..., 1)): the comparison in Figure 4.B measures
// the dataflow plans (replication shuffle vs group-by-join), not an
// artificial kernel gap. Partial-product tiles are drawn from the
// context tile pool and the dead reduce operand is returned, mirroring
// the SAC executor.
package mllib

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/linalg"
)

// Coord aliases the engine's block coordinate.
type Coord = dataflow.Coord

// Block is one dense sub-matrix block with its coordinate.
type Block = dataflow.Pair[Coord, *linalg.Dense]

// BlockMatrix mirrors org.apache.spark.mllib.linalg.distributed.BlockMatrix
// with square blocks of size PerBlock.
type BlockMatrix struct {
	Rows, Cols int64
	PerBlock   int
	Blocks     *dataflow.Dataset[Block]
}

// GridPartitioner mirrors MLlib's GridPartitioner: a roughly square
// grid of partitions over the block coordinates.
type GridPartitioner struct {
	RowBlocks, ColBlocks     int64
	RowsPerPart, ColsPerPart int64
	numParts                 int
}

// NewGridPartitioner sizes a grid for the given block grid and a
// suggested number of partitions, like GridPartitioner.apply.
func NewGridPartitioner(rowBlocks, colBlocks int64, suggestedParts int) GridPartitioner {
	if suggestedParts <= 0 {
		suggestedParts = 1
	}
	// Match MLlib: scale the grid so that each dimension gets about
	// sqrt(parts) cells.
	target := int64(1)
	for target*target < int64(suggestedParts) {
		target++
	}
	rpp := ceilDiv(rowBlocks, target)
	cpp := ceilDiv(colBlocks, target)
	g := GridPartitioner{
		RowBlocks: rowBlocks, ColBlocks: colBlocks,
		RowsPerPart: rpp, ColsPerPart: cpp,
	}
	g.numParts = int(ceilDiv(rowBlocks, rpp) * ceilDiv(colBlocks, cpp))
	return g
}

// NumPartitions returns the number of grid cells.
func (g GridPartitioner) NumPartitions() int { return g.numParts }

// Partition maps a block coordinate to its grid cell.
func (g GridPartitioner) Partition(c Coord) int {
	r := c.I / g.RowsPerPart
	cc := c.J / g.ColsPerPart
	nc := ceilDiv(g.ColBlocks, g.ColsPerPart)
	return int(r*nc + cc)
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// FromDense partitions a driver-side dense matrix into blocks.
func FromDense(ctx *dataflow.Context, d *linalg.Dense, perBlock int, numPartitions int) *BlockMatrix {
	rows, cols := int64(d.Rows), int64(d.Cols)
	brows := ceilDiv(rows, int64(perBlock))
	bcols := ceilDiv(cols, int64(perBlock))
	var blocks []Block
	for bi := int64(0); bi < brows; bi++ {
		for bj := int64(0); bj < bcols; bj++ {
			blk := linalg.NewDense(perBlock, perBlock)
			for i := 0; i < perBlock; i++ {
				gi := bi*int64(perBlock) + int64(i)
				if gi >= rows {
					break
				}
				for j := 0; j < perBlock; j++ {
					gj := bj*int64(perBlock) + int64(j)
					if gj >= cols {
						break
					}
					blk.Set(i, j, d.At(int(gi), int(gj)))
				}
			}
			blocks = append(blocks, dataflow.KV(Coord{I: bi, J: bj}, blk))
		}
	}
	return &BlockMatrix{Rows: rows, Cols: cols, PerBlock: perBlock,
		Blocks: dataflow.Parallelize(ctx, blocks, numPartitions)}
}

// RandBlockMatrix generates a random block matrix without a driver
// dense copy, mirroring tiled.RandMatrix for benchmark parity.
func RandBlockMatrix(ctx *dataflow.Context, rows, cols int64, perBlock int, numPartitions int, lo, hi float64, seed int64) *BlockMatrix {
	brows := ceilDiv(rows, int64(perBlock))
	bcols := ceilDiv(cols, int64(perBlock))
	coords := make([]Coord, 0, brows*bcols)
	for bi := int64(0); bi < brows; bi++ {
		for bj := int64(0); bj < bcols; bj++ {
			coords = append(coords, Coord{I: bi, J: bj})
		}
	}
	base := dataflow.Parallelize(ctx, coords, numPartitions)
	blocks := dataflow.Map(base, func(c Coord) Block {
		blk := linalg.RandDense(perBlock, perBlock, lo, hi, seed^(c.I*1_000_003+c.J*7_919+1))
		// Zero padding outside logical bounds.
		for i := 0; i < perBlock; i++ {
			for j := 0; j < perBlock; j++ {
				if c.I*int64(perBlock)+int64(i) >= rows || c.J*int64(perBlock)+int64(j) >= cols {
					blk.Set(i, j, 0)
				}
			}
		}
		return dataflow.KV(c, blk)
	})
	return &BlockMatrix{Rows: rows, Cols: cols, PerBlock: perBlock, Blocks: blocks}
}

// BlockRows returns the number of block rows.
func (m *BlockMatrix) BlockRows() int64 { return ceilDiv(m.Rows, int64(m.PerBlock)) }

// BlockCols returns the number of block columns.
func (m *BlockMatrix) BlockCols() int64 { return ceilDiv(m.Cols, int64(m.PerBlock)) }

// ToDense collects the matrix on the driver.
func (m *BlockMatrix) ToDense() *linalg.Dense {
	out := linalg.NewDense(int(m.Rows), int(m.Cols))
	for _, b := range dataflow.Collect(m.Blocks) {
		rowOff := b.Key.I * int64(m.PerBlock)
		colOff := b.Key.J * int64(m.PerBlock)
		for i := 0; i < m.PerBlock; i++ {
			gi := rowOff + int64(i)
			if gi >= m.Rows {
				break
			}
			for j := 0; j < m.PerBlock; j++ {
				gj := colOff + int64(j)
				if gj >= m.Cols {
					break
				}
				out.Set(int(gi), int(gj), b.Value.At(i, j))
			}
		}
	}
	return out
}

// Add mirrors BlockMatrix.add: cogroup the two block sets by
// coordinate and add blocks element-wise (serial kernel).
func (m *BlockMatrix) Add(o *BlockMatrix) *BlockMatrix {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.PerBlock != o.PerBlock {
		panic(fmt.Sprintf("mllib: add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	cg := dataflow.CoGroup(m.Blocks, o.Blocks, m.Blocks.NumPartitions())
	blocks := dataflow.Map(cg, func(g dataflow.Pair[Coord, dataflow.CoGrouped[*linalg.Dense, *linalg.Dense]]) Block {
		var acc *linalg.Dense
		for _, b := range g.Value.Left {
			if acc == nil {
				acc = b.Clone()
			} else {
				linalg.AddInPlace(acc, b)
			}
		}
		for _, b := range g.Value.Right {
			if acc == nil {
				acc = b.Clone()
			} else {
				linalg.AddInPlace(acc, b)
			}
		}
		return dataflow.KV(g.Key, acc)
	})
	return &BlockMatrix{Rows: m.Rows, Cols: m.Cols, PerBlock: m.PerBlock, Blocks: blocks}
}

// Subtract mirrors BlockMatrix.subtract.
func (m *BlockMatrix) Subtract(o *BlockMatrix) *BlockMatrix {
	return m.Add(o.Scale(-1))
}

// Scale multiplies every element by s (narrow map).
func (m *BlockMatrix) Scale(s float64) *BlockMatrix {
	blocks := dataflow.Map(m.Blocks, func(b Block) Block {
		return dataflow.KV(b.Key, linalg.Scale(b.Value, s))
	})
	return &BlockMatrix{Rows: m.Rows, Cols: m.Cols, PerBlock: m.PerBlock, Blocks: blocks}
}

// Transpose mirrors BlockMatrix.transpose.
func (m *BlockMatrix) Transpose() *BlockMatrix {
	blocks := dataflow.Map(m.Blocks, func(b Block) Block {
		return dataflow.KV(Coord{I: b.Key.J, J: b.Key.I}, b.Value.Transpose())
	})
	return &BlockMatrix{Rows: m.Cols, Cols: m.Rows, PerBlock: m.PerBlock, Blocks: blocks}
}

// placed is a block replicated to one grid partition for the simulated
// MLlib multiply.
type placed struct {
	C    Coord
	Tile *linalg.Dense
}

// NumBytes reports the real payload (coordinate + block data) so the
// baseline's replication shuffle is accounted honestly, matching the
// SAC side.
func (p placed) NumBytes() int64 { return 16 + p.Tile.NumBytes() }

// destinationGrid reproduces BlockMatrix.simulateMultiply: for each
// left block (i,k), the set of result partitions it must reach is the
// grid cells of the output coordinates (i, j) for all j with a right
// block (k,j); symmetrically for right blocks.
//
// Multiply mirrors BlockMatrix.multiply: replicate each block to the
// result partitions that need it (partition-granular, not
// block-granular), cogroup by partition, compute the local products,
// and reduce partial products by output coordinate.
func (m *BlockMatrix) Multiply(o *BlockMatrix) *BlockMatrix {
	if m.Cols != o.Rows || m.PerBlock != o.PerBlock {
		panic("mllib: multiply shape mismatch")
	}
	parts := m.Blocks.NumPartitions()
	grid := NewGridPartitioner(m.BlockRows(), o.BlockCols(), parts)

	nOutCols := o.BlockCols()
	nOutRows := m.BlockRows()

	// Left block (i,k) goes to every grid cell hosting outputs (i, *).
	left := dataflow.FlatMap(m.Blocks, func(b Block) []dataflow.Pair[int, placed] {
		dests := map[int]bool{}
		for j := int64(0); j < nOutCols; j++ {
			dests[grid.Partition(Coord{I: b.Key.I, J: j})] = true
		}
		out := make([]dataflow.Pair[int, placed], 0, len(dests))
		for d := range dests {
			out = append(out, dataflow.KV(d, placed{C: b.Key, Tile: b.Value}))
		}
		return out
	})
	// Right block (k,j) goes to every grid cell hosting outputs (*, j).
	right := dataflow.FlatMap(o.Blocks, func(b Block) []dataflow.Pair[int, placed] {
		dests := map[int]bool{}
		for i := int64(0); i < nOutRows; i++ {
			dests[grid.Partition(Coord{I: i, J: b.Key.J})] = true
		}
		out := make([]dataflow.Pair[int, placed], 0, len(dests))
		for d := range dests {
			out = append(out, dataflow.KV(d, placed{C: b.Key, Tile: b.Value}))
		}
		return out
	})

	pool := m.Blocks.Context().TilePool()
	cg := dataflow.CoGroup(left, right, grid.NumPartitions())
	products := dataflow.FlatMap(cg, func(g dataflow.Pair[int, dataflow.CoGrouped[placed, placed]]) []Block {
		// Index right blocks by their row coordinate k.
		byK := map[int64][]placed{}
		for _, r := range g.Value.Right {
			byK[r.C.I] = append(byK[r.C.I], r)
		}
		var out []Block
		for _, l := range g.Value.Left {
			for _, r := range byK[l.C.J] {
				dest := Coord{I: l.C.I, J: r.C.J}
				if grid.Partition(dest) != g.Key {
					continue // this copy is not responsible for dest
				}
				c := pool.Get(m.PerBlock, m.PerBlock)
				// Single-threaded Breeze stand-in: blocked kernel, budget 1.
				linalg.GemmBudget(c, l.Tile, r.Tile, 1)
				out = append(out, dataflow.KV(dest, c))
			}
		}
		return out
	})
	reduced := dataflow.ReduceByKey(products, func(a, b *linalg.Dense) *linalg.Dense {
		linalg.AddInPlace(a, b)
		pool.Put(b)
		return a
	}, grid.NumPartitions())
	return &BlockMatrix{Rows: m.Rows, Cols: o.Cols, PerBlock: m.PerBlock, Blocks: reduced}
}
