package mllib

import (
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
	"repro/internal/linalg"
)

func mctx() *dataflow.Context { return dataflow.NewLocalContext() }

func TestGridPartitioner(t *testing.T) {
	g := NewGridPartitioner(8, 8, 16)
	if g.NumPartitions() < 4 || g.NumPartitions() > 32 {
		t.Fatalf("odd partition count %d", g.NumPartitions())
	}
	seen := map[int]bool{}
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			p := g.Partition(Coord{I: i, J: j})
			if p < 0 || p >= g.NumPartitions() {
				t.Fatalf("partition %d out of range", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != g.NumPartitions() {
		t.Fatalf("used %d of %d cells", len(seen), g.NumPartitions())
	}
}

func TestGridPartitionerSmall(t *testing.T) {
	g := NewGridPartitioner(1, 1, 8)
	if g.NumPartitions() != 1 {
		t.Fatalf("1x1 grid should have 1 partition, got %d", g.NumPartitions())
	}
	if g.Partition(Coord{I: 0, J: 0}) != 0 {
		t.Fatal("bad partition")
	}
}

func TestBlockMatrixRoundTrip(t *testing.T) {
	ctx := mctx()
	d := linalg.RandDense(7, 5, -3, 3, 41)
	m := FromDense(ctx, d, 3, 2)
	if !m.ToDense().Equal(d) {
		t.Fatal("round trip")
	}
	if m.BlockRows() != 3 || m.BlockCols() != 2 {
		t.Fatalf("grid %dx%d", m.BlockRows(), m.BlockCols())
	}
}

func TestBlockMatrixAdd(t *testing.T) {
	ctx := mctx()
	da := linalg.RandDense(6, 7, 0, 10, 42)
	db := linalg.RandDense(6, 7, 0, 10, 43)
	a := FromDense(ctx, da, 2, 3)
	b := FromDense(ctx, db, 2, 3)
	if !a.Add(b).ToDense().EqualApprox(linalg.AddDense(da, db), 1e-12) {
		t.Fatal("add mismatch")
	}
}

func TestBlockMatrixSubtractScale(t *testing.T) {
	ctx := mctx()
	da := linalg.RandDense(4, 4, 0, 10, 44)
	db := linalg.RandDense(4, 4, 0, 10, 45)
	a := FromDense(ctx, da, 2, 2)
	b := FromDense(ctx, db, 2, 2)
	if !a.Subtract(b).ToDense().EqualApprox(linalg.SubDense(da, db), 1e-12) {
		t.Fatal("subtract mismatch")
	}
	if !a.Scale(2.5).ToDense().EqualApprox(linalg.Scale(da, 2.5), 1e-12) {
		t.Fatal("scale mismatch")
	}
}

func TestBlockMatrixTranspose(t *testing.T) {
	ctx := mctx()
	d := linalg.RandDense(5, 9, -1, 1, 46)
	m := FromDense(ctx, d, 4, 2)
	if !m.Transpose().ToDense().Equal(d.Transpose()) {
		t.Fatal("transpose mismatch")
	}
}

func TestBlockMatrixMultiply(t *testing.T) {
	ctx := mctx()
	da := linalg.RandDense(6, 4, 0, 2, 47)
	db := linalg.RandDense(4, 5, 0, 2, 48)
	a := FromDense(ctx, da, 2, 3)
	b := FromDense(ctx, db, 2, 3)
	want := linalg.Mul(da, db)
	got := a.Multiply(b).ToDense()
	if !got.EqualApprox(want, 1e-9) {
		t.Fatalf("multiply mismatch: %g", got.MaxAbsDiff(want))
	}
}

func TestBlockMatrixMultiplyPadded(t *testing.T) {
	ctx := mctx()
	da := linalg.RandDense(5, 7, -1, 1, 49)
	db := linalg.RandDense(7, 3, -1, 1, 50)
	a := FromDense(ctx, da, 4, 2)
	b := FromDense(ctx, db, 4, 2)
	want := linalg.Mul(da, db)
	if got := a.Multiply(b).ToDense(); !got.EqualApprox(want, 1e-9) {
		t.Fatal("padded multiply mismatch")
	}
}

func TestRandBlockMatrixDeterministic(t *testing.T) {
	ctx := mctx()
	a := RandBlockMatrix(ctx, 6, 6, 2, 2, 0, 10, 3).ToDense()
	b := RandBlockMatrix(ctx, 6, 6, 2, 2, 0, 10, 3).ToDense()
	if !a.Equal(b) {
		t.Fatal("same seed must reproduce")
	}
}

// MLlib and the tiled package must agree on the same generated inputs,
// since the benchmarks compare them head to head.
func TestRandAgreesWithTiledSeeding(t *testing.T) {
	ctx := mctx()
	a := RandBlockMatrix(ctx, 9, 9, 4, 2, 0, 10, 77).ToDense()
	if a.Rows != 9 || a.Cols != 9 {
		t.Fatal("dims")
	}
	for _, v := range a.Data {
		if v < 0 || v >= 10 {
			t.Fatalf("value %v out of range", v)
		}
	}
}

// Property: MLlib multiply agrees with dense multiply for random
// shapes and block sizes.
func TestQuickMultiplyMatchesDense(t *testing.T) {
	ctx := mctx()
	f := func(n1, n2, n3, ts uint8, seed int64) bool {
		r, k, c := int(n1%5)+1, int(n2%5)+1, int(n3%5)+1
		n := int(ts%3) + 1
		da := linalg.RandDense(r, k, -2, 2, seed)
		db := linalg.RandDense(k, c, -2, 2, seed+1)
		a := FromDense(ctx, da, n, 2)
		b := FromDense(ctx, db, n, 2)
		return a.Multiply(b).ToDense().EqualApprox(linalg.Mul(da, db), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// MLlib's replication factor is bounded by the partition grid, not the
// block grid: strictly fewer shuffled records than block-granular
// replication (2 g^3) on a big enough grid.
func TestMultiplyReplicationBounded(t *testing.T) {
	ctx := mctx()
	da := linalg.RandDense(24, 24, 0, 1, 51)
	db := linalg.RandDense(24, 24, 0, 1, 52)
	a := FromDense(ctx, da, 4, 4) // 6x6 blocks
	b := FromDense(ctx, db, 4, 4)
	ctx.ResetMetrics()
	a.Multiply(b).ToDense()
	recs := ctx.Metrics().ShuffledRecords
	// Block-granular replication would be 2*6^3 = 432 records before
	// the product reduce; MLlib must ship fewer replicas.
	if recs >= 432 {
		t.Fatalf("MLlib shuffled %d records, expected < 432", recs)
	}
}
