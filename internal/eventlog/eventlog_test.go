package eventlog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// runLogged executes one query on a fresh local session and logs it,
// returning the log path and the live metered snapshot's stage table.
func runLogged(t *testing.T, dir, src string) (string, string) {
	t.Helper()
	s := core.NewSession(core.Config{TileSize: 8, Partitions: 4})
	defer s.Close()
	s.RegisterRandMatrix("A", 32, 32, 0, 10, 1)
	s.RegisterRandMatrix("B", 32, 32, 0, 10, 2)
	s.RegisterScalar("n", int64(32))

	before := s.Metrics()
	start := time.Now()
	plan, err := s.Explain(src)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if _, err := s.Query(src); err != nil {
		t.Fatalf("query: %v", err)
	}
	snap := s.Metrics().Sub(before)
	wall := time.Since(start)
	if len(snap.PerStage) == 0 {
		t.Fatal("query ran no stages; pick an eager query")
	}

	path := filepath.Join(dir, FileName(start, 1))
	w, err := NewWriter(path)
	if err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err := LogRun(w, src, plan, snap, wall, "scalar", nil); err != nil {
		t.Fatalf("log: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return path, snap.FormatStages()
}

// TestReplayMatchesLive is the acceptance test: `sac history` must
// reproduce a run's stage summary from the log alone, byte for byte.
func TestReplayMatchesLive(t *testing.T) {
	src := "+/[ m | ((i,j),m) <- A ]"
	path, liveTable := runLogged(t, t.TempDir(), src)

	run, err := ReplayFile(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if run.Query != src {
		t.Fatalf("query = %q", run.Query)
	}
	if run.Plan == "" || run.Error != "" || run.Wall <= 0 {
		t.Fatalf("run header drifted: %+v", run)
	}
	if got := run.Snapshot.FormatStages(); got != liveTable {
		t.Fatalf("replayed stage table drifted:\nlive:\n%s\nreplayed:\n%s", liveTable, got)
	}
	// The per-event stage rows agree with the embedded snapshot.
	if len(run.Stages) != len(run.Snapshot.PerStage) {
		t.Fatalf("%d stage events vs %d snapshot rows", len(run.Stages), len(run.Snapshot.PerStage))
	}
	out := run.Format()
	for _, want := range []string{"query: " + src, "plan: ", "totals: ", "stages:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

// TestReplayToleratesGrowth checks forward compatibility: unknown
// event kinds are carried through, blank lines skipped, and a log
// truncated before the metrics record still replays its stage events.
func TestReplayToleratesGrowth(t *testing.T) {
	src := "+/[ m | ((i,j),m) <- A ]"
	path, _ := runLogged(t, t.TempDir(), src)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	// Inject an unknown kind and a blank line mid-stream.
	grown := append([]string{lines[0],
		`{"time":"2026-08-07T00:00:00Z","kind":"future.thing","worker":"w9"}`, ""},
		lines[1:]...)
	run, err := Replay(strings.NewReader(strings.Join(grown, "\n")))
	if err != nil {
		t.Fatalf("replay grown log: %v", err)
	}
	found := false
	for _, e := range run.Events {
		if e.Kind == "future.thing" {
			found = true
		}
	}
	if !found {
		t.Fatal("unknown event dropped")
	}

	// Truncate before the metrics record: stage events must survive.
	cut := -1
	for i, l := range lines {
		if strings.Contains(l, `"kind":"metrics"`) {
			cut = i
			break
		}
	}
	if cut < 0 {
		t.Fatal("no metrics record in log")
	}
	tr, err := Replay(strings.NewReader(strings.Join(lines[:cut], "\n")))
	if err != nil {
		t.Fatalf("replay truncated log: %v", err)
	}
	if len(tr.Stages) == 0 {
		t.Fatal("truncated replay lost stage events")
	}
	if tr.Snapshot.Stages != 0 {
		t.Fatal("truncated replay invented a snapshot")
	}

	// A malformed line names its position.
	if _, err := Replay(strings.NewReader("{\"kind\":\"plan\"}\n{oops\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line error = %v", err)
	}
	if _, err := Replay(strings.NewReader("")); err == nil {
		t.Fatal("empty log replayed")
	}
}

// TestFileName pins the session-relative naming scheme.
func TestFileName(t *testing.T) {
	at := time.Date(2026, 8, 7, 10, 30, 0, 0, time.UTC)
	if got := FileName(at, 7); got != "query-20260807-103000-007.jsonl" {
		t.Fatalf("FileName = %q", got)
	}
	if a, b := FileName(at, 1), FileName(at, 2); a == b {
		t.Fatalf("names collide: %q", a)
	}
	_ = fmt.Sprint() // keep fmt imported if assertions change
}
