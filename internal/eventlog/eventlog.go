// Package eventlog is the persistent third leg of the observability
// plane: one JSONL file per query recording what the planner chose and
// what the engine measured — the plan decision, every stage's
// execution record, adaptive rebalances, worker losses, spill
// pressure, and the complete metrics snapshot. A log replays into the
// exact stage summary the live run printed (`sac history <file>`), so
// a slow query can be diagnosed after the fact, on another machine,
// with nothing but the file.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/dataflow"
)

// Event kinds, in the order LogRun writes them.
const (
	KindQueryStart = "query.start"  // Query, Time
	KindPlan       = "plan"         // Plan (the chosen physical translation)
	KindStage      = "stage"        // Stage (one completed stage's record)
	KindAdaptive   = "adaptive"     // Adaptive (one stage-boundary rebalance)
	KindWorkerLost = "worker.lost"  // Worker (a rank that died mid-job)
	KindSpill      = "spill"        // SpilledBytes/SpillFiles summary
	KindMetrics    = "metrics"      // Metrics (the full final snapshot)
	KindQueryEnd   = "query.finish" // WallNs, Result or Error
)

// Event is one JSONL record. Kind selects which payload fields are
// set; unknown kinds are preserved by Replay so the format can grow.
type Event struct {
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`

	Query  string `json:"query,omitempty"`
	Plan   string `json:"plan,omitempty"`
	Result string `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	Worker string `json:"worker,omitempty"`
	WallNs int64  `json:"wallNs,omitempty"`

	SpilledBytes int64 `json:"spilledBytes,omitempty"`
	SpillFiles   int64 `json:"spillFiles,omitempty"`

	Stage    *dataflow.StageMetric     `json:"stage,omitempty"`
	Adaptive *dataflow.AdaptiveEvent   `json:"adaptive,omitempty"`
	Metrics  *dataflow.MetricsSnapshot `json:"metrics,omitempty"`
}

// Writer appends events to one query's log file.
type Writer struct {
	mu  sync.Mutex
	f   *os.File
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter creates (truncating) the log file at path, making parent
// directories as needed.
func NewWriter(path string) (*Writer, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(f)
	return &Writer{f: f, bw: bw, enc: json.NewEncoder(bw)}, nil
}

// Emit appends one event, stamping Time if the caller left it zero.
func (w *Writer) Emit(e Event) error {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(e)
}

// Close flushes and closes the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// FileName derives a log file name for the n-th query of a session
// started at t: deterministic within a session, unique across them.
func FileName(t time.Time, n int) string {
	return fmt.Sprintf("query-%s-%03d.jsonl", t.Format("20060102-150405"), n)
}

// LogRun writes one query's complete record: start, plan, per-stage
// rows, adaptive rebalances, worker losses, spill pressure, the full
// metrics snapshot, and the finish marker. snap should be the run's
// metered snapshot (Sub of before/after on a reused session, or the
// cluster-merged snapshot), so the stage rows are exactly the run's.
func LogRun(w *Writer, query, plan string, snap dataflow.MetricsSnapshot, wall time.Duration, result string, runErr error) error {
	start := time.Now().Add(-wall)
	if err := w.Emit(Event{Time: start, Kind: KindQueryStart, Query: query}); err != nil {
		return err
	}
	if plan != "" {
		if err := w.Emit(Event{Kind: KindPlan, Plan: plan}); err != nil {
			return err
		}
	}
	for i := range snap.PerStage {
		if err := w.Emit(Event{Kind: KindStage, Stage: &snap.PerStage[i]}); err != nil {
			return err
		}
	}
	for i := range snap.AdaptiveEvents {
		if err := w.Emit(Event{Kind: KindAdaptive, Adaptive: &snap.AdaptiveEvents[i]}); err != nil {
			return err
		}
	}
	for _, ws := range snap.PerWorker {
		if !ws.Lost {
			continue
		}
		if err := w.Emit(Event{Kind: KindWorkerLost, Worker: ws.ID}); err != nil {
			return err
		}
	}
	if snap.SpilledBytes > 0 || snap.SpillFiles > 0 {
		if err := w.Emit(Event{Kind: KindSpill,
			SpilledBytes: snap.SpilledBytes, SpillFiles: snap.SpillFiles}); err != nil {
			return err
		}
	}
	if err := w.Emit(Event{Kind: KindMetrics, Metrics: &snap}); err != nil {
		return err
	}
	end := Event{Kind: KindQueryEnd, WallNs: wall.Nanoseconds(), Result: result}
	if runErr != nil {
		end.Error = runErr.Error()
	}
	return w.Emit(end)
}

// Run is a replayed query log.
type Run struct {
	Query  string
	Plan   string
	Result string
	Error  string
	Wall   time.Duration
	// Stages holds the per-stage events in file order; Snapshot is the
	// embedded full snapshot (zero-valued if the log predates one or
	// was truncated before the metrics record).
	Stages   []dataflow.StageMetric
	Snapshot dataflow.MetricsSnapshot
	Losses   []string
	Events   []Event
}

// Replay parses a JSONL event stream back into a Run. Unknown kinds
// are kept in Events but otherwise ignored; a malformed line fails
// loudly with its line number.
func Replay(r io.Reader) (*Run, error) {
	run := &Run{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %w", line, err)
		}
		run.Events = append(run.Events, e)
		switch e.Kind {
		case KindQueryStart:
			run.Query = e.Query
		case KindPlan:
			run.Plan = e.Plan
		case KindStage:
			if e.Stage != nil {
				run.Stages = append(run.Stages, *e.Stage)
			}
		case KindWorkerLost:
			run.Losses = append(run.Losses, e.Worker)
		case KindMetrics:
			if e.Metrics != nil {
				run.Snapshot = *e.Metrics
			}
		case KindQueryEnd:
			run.Wall = time.Duration(e.WallNs)
			run.Result = e.Result
			run.Error = e.Error
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(run.Events) == 0 {
		return nil, fmt.Errorf("eventlog: empty log")
	}
	return run, nil
}

// ReplayFile replays one log file.
func ReplayFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Replay(f)
}

// Format renders the replayed run the way the live `-analyze` report
// printed it: query, plan, totals, and the stage table (straggler and
// skew warnings included — they derive from the snapshot). The stage
// table is byte-identical to the live run's FormatStages output.
func (r *Run) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", r.Query)
	if r.Plan != "" {
		fmt.Fprintf(&b, "plan: %s\n", r.Plan)
	}
	if r.Error != "" {
		fmt.Fprintf(&b, "error: %s\n", r.Error)
	}
	if r.Result != "" {
		fmt.Fprintf(&b, "result: %s\n", r.Result)
	}
	if r.Wall > 0 {
		fmt.Fprintf(&b, "wall: %s\n", r.Wall.Round(time.Microsecond))
	}
	for _, w := range r.Losses {
		fmt.Fprintf(&b, "worker lost: %s\n", w)
	}
	fmt.Fprintf(&b, "totals: %s\n\nstages:\n", r.Snapshot)
	b.WriteString(r.Snapshot.FormatStages())
	return b.String()
}
