package debug

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServe(t *testing.T) {
	ctx := dataflow.NewContext(dataflow.Config{Parallelism: 2})
	// Run something so the snapshot has stages to show.
	d := dataflow.Parallelize(ctx, []int{1, 2, 3, 4, 5, 6}, 3)
	pairs := dataflow.Map(d, func(v int) dataflow.Pair[int, int] { return dataflow.KV(v%2, v) })
	dataflow.Collect(dataflow.ReduceByKey(pairs, func(a, b int) int { return a + b }, 2))

	srv, err := Serve("127.0.0.1:0", ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics status %d", code)
	}
	if n, err := obs.ValidateExposition(strings.NewReader(body)); err != nil || n == 0 {
		t.Fatalf("/debug/metrics is not valid Prometheus text (%d samples): %v\n%s", n, err, body)
	}
	if !strings.Contains(body, "sac_dataflow_stages_total") {
		t.Fatalf("/debug/metrics missing engine counters:\n%s", body)
	}

	code, body = get(t, base+"/debug/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics.json status %d", code)
	}
	var snap dataflow.MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/metrics.json is not a MetricsSnapshot: %v\n%s", err, body)
	}
	if snap.Stages == 0 || len(snap.PerStage) == 0 {
		t.Fatalf("snapshot shows no stages: %+v", snap)
	}

	code, body = get(t, base+"/debug/stages")
	if code != http.StatusOK || !strings.Contains(body, "max concurrent stages") {
		t.Fatalf("/debug/stages status %d body:\n%s", code, body)
	}
	if !strings.Contains(body, "shuffle(") {
		t.Fatalf("/debug/stages missing shuffle stage row:\n%s", body)
	}

	code, body = get(t, base+"/debug/stages.json")
	if code != http.StatusOK {
		t.Fatalf("/debug/stages.json status %d", code)
	}
	var doc struct {
		Stages []struct {
			Name        string `json:"name"`
			WallNs      int64  `json:"wall_ns"`
			PartRecords *struct {
				Max int64 `json:"max"`
			} `json:"part_records"`
		} `json:"stages"`
		Totals struct {
			ShuffledRecords int64 `json:"shuffled_records"`
		} `json:"totals"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/stages.json is not valid JSON: %v\n%s", err, body)
	}
	if len(doc.Stages) == 0 || doc.Totals.ShuffledRecords == 0 {
		t.Fatalf("/debug/stages.json shows no stages:\n%s", body)
	}
	foundShuffle := false
	for _, st := range doc.Stages {
		if strings.Contains(st.Name, "shuffle") && st.PartRecords != nil && st.PartRecords.Max > 0 {
			foundShuffle = true
		}
	}
	if !foundShuffle {
		t.Fatalf("/debug/stages.json missing shuffle stage with a partition histogram:\n%s", body)
	}

	code, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}

	code, body = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/debug/metrics") {
		t.Fatalf("index page wrong: %d\n%s", code, body)
	}

	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path should 404, got %d", code)
	}
}

// TestServeMemory runs a budgeted shuffle big enough to spill and
// checks that /debug/memory reports the live budget gauge and the
// spill counters.
func TestServeMemory(t *testing.T) {
	const budget = 1 << 20
	ctx := dataflow.NewContext(dataflow.Config{Parallelism: 4, MemoryBudget: budget})
	defer ctx.Close()
	d := dataflow.Generate(ctx, 16, func(p int) []int64 {
		rows := make([]int64, 16384)
		for i := range rows {
			rows[i] = int64(p*len(rows) + i)
		}
		return rows
	})
	pairs := dataflow.Map(d, func(v int64) dataflow.Pair[int64, int64] {
		return dataflow.KV(v%100003, v)
	})
	dataflow.Count(dataflow.GroupByKey(pairs, 8))

	srv, err := Serve("127.0.0.1:0", ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/debug/memory")
	if code != http.StatusOK {
		t.Fatalf("/debug/memory status %d", code)
	}
	var snap memorySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/memory is not a memorySnapshot: %v\n%s", err, body)
	}
	if snap.Budget != budget {
		t.Fatalf("budget gauge %d, want %d\n%s", snap.Budget, budget, body)
	}
	if snap.Spilled.Bytes == 0 || snap.Spilled.Files == 0 {
		t.Fatalf("working set over budget but /debug/memory shows no spill:\n%s", body)
	}
	if snap.Peak == 0 {
		t.Fatalf("peak gauge should be nonzero after a budgeted run:\n%s", body)
	}
}

// TestServeNilSource covers the sacworker shape: no session attached,
// so the Prometheus and pprof routes serve while snapshot-backed
// routes answer 503.
func TestServeNilSource(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics status %d with nil source", code)
	}
	if _, err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("nil-source exposition invalid: %v", err)
	}
	for _, path := range []string{"/debug/metrics.json", "/debug/stages", "/debug/stages.json", "/debug/memory"} {
		if code, _ := get(t, base+path); code != http.StatusServiceUnavailable {
			t.Fatalf("%s status %d with nil source, want 503", path, code)
		}
	}
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d with nil source", code)
	}
}

// clusterSource fakes a ClusterSession snapshot: merged PerStage rows
// plus per-worker rows with a straggler.
type clusterSource struct{ snap dataflow.MetricsSnapshot }

func (c clusterSource) Metrics() dataflow.MetricsSnapshot { return c.snap }

func TestStagesJSONClusterRows(t *testing.T) {
	mk := func(worker string, wallMs int64) dataflow.StageMetric {
		return dataflow.StageMetric{ID: 1, Name: "stage: shuffle(join)", Worker: worker,
			Wall: time.Duration(wallMs) * time.Millisecond, Tasks: 4}
	}
	workers := []dataflow.StageMetric{mk("w0", 10), mk("w1", 12), mk("w2", 80)}
	snap := dataflow.MetricsSnapshot{
		WorkerStages: workers,
		PerStage:     dataflow.MergeStageRows(workers),
	}
	srv, err := Serve("127.0.0.1:0", clusterSource{snap})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/debug/stages.json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var doc struct {
		Stages []struct {
			Worker string `json:"worker"`
			Tasks  int64  `json:"tasks"`
		} `json:"stages"`
		WorkerStages []struct {
			Worker string `json:"worker"`
		} `json:"worker_stages"`
		Stragglers []string `json:"stragglers"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(doc.Stages) != 1 || doc.Stages[0].Tasks != 12 {
		t.Fatalf("merged stages wrong:\n%s", body)
	}
	if len(doc.WorkerStages) != 3 {
		t.Fatalf("want 3 worker rows:\n%s", body)
	}
	seen := map[string]bool{}
	for _, ws := range doc.WorkerStages {
		seen[ws.Worker] = true
	}
	if !seen["w0"] || !seen["w1"] || !seen["w2"] {
		t.Fatalf("worker rows missing ranks: %v", seen)
	}
	if len(doc.Stragglers) != 1 || !strings.Contains(doc.Stragglers[0], "w2") {
		t.Fatalf("straggler not surfaced: %v", doc.Stragglers)
	}
}
