// Package debug provides an opt-in HTTP endpoint for long engine runs:
// the standard net/http/pprof profiles plus a live JSON snapshot of the
// engine metrics and the per-stage execution table. Nothing listens
// unless a CLI is started with its -debug flag (or Serve is called
// directly), so the engine itself stays network-free.
package debug

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/dataflow"
)

// Source supplies live engine metrics. *dataflow.Context satisfies it,
// as does core.Session.
type Source interface {
	Metrics() dataflow.MetricsSnapshot
}

// Server is a running debug endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the endpoint on addr (for example "localhost:6060";
// ":0" picks a free port — read it back with Addr). Routes:
//
//	/debug/pprof/   the standard pprof index and profiles
//	/debug/metrics  the current MetricsSnapshot as JSON
//	/debug/stages   the per-stage execution table as text
func Serve(addr string, src Source) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(src.Metrics()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/stages", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, src.Metrics().FormatStages())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>SAC engine debug</h1><ul>
<li><a href="/debug/metrics">/debug/metrics</a> — live metrics snapshot (JSON)</li>
<li><a href="/debug/stages">/debug/stages</a> — per-stage execution table</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiles</li>
</ul></body></html>`)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the listening address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
