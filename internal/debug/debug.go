// Package debug provides an opt-in HTTP endpoint for long engine runs:
// the standard net/http/pprof profiles, a Prometheus scrape target
// backed by the process-wide metrics registry, and live JSON snapshots
// of the engine metrics and the per-stage execution table. Nothing
// listens unless a CLI is started with its -debug flag (or Serve is
// called directly), so the engine itself stays network-free.
package debug

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/dataflow"
	"repro/internal/obs"
)

// Source supplies live engine metrics. *dataflow.Context satisfies it,
// as does core.Session and jobs.ClusterSession. A nil Source is legal
// (sacworker has no session of its own until a job arrives): the
// registry-backed endpoints still serve, and the snapshot-backed ones
// answer 503.
type Source interface {
	Metrics() dataflow.MetricsSnapshot
}

// memorySnapshot is the /debug/memory document: the budget manager's
// live gauges plus the cumulative spill counters, carved out of the
// full metrics snapshot so a watcher polling for memory pressure does
// not have to parse per-stage tables.
type memorySnapshot struct {
	Budget      int64         `json:"budget"`
	Used        int64         `json:"used"`
	Peak        int64         `json:"peak"`
	Waits       int64         `json:"waits"`
	Overcommits int64         `json:"overcommits"`
	CachedBytes int64         `json:"cached_bytes"`
	Spilled     spillSnapshot `json:"spilled"`
}

type spillSnapshot struct {
	Bytes       int64 `json:"bytes"`
	Records     int64 `json:"records"`
	Files       int64 `json:"files"`
	MergePasses int64 `json:"merge_passes"`
}

// distJSON is a dataflow.Dist with stable lowercase keys, so external
// tooling does not depend on the Go field names.
type distJSON struct {
	N      int   `json:"n"`
	Min    int64 `json:"min"`
	P50    int64 `json:"p50"`
	P99    int64 `json:"p99"`
	Max    int64 `json:"max"`
	ArgMax int   `json:"argmax"`
}

func toDistJSON(d dataflow.Dist) distJSON {
	return distJSON{N: d.N, Min: d.Min, P50: d.P50, P99: d.P99, Max: d.Max, ArgMax: d.ArgMax}
}

// stageJSON is one row of the /debug/stages.json document: the
// per-stage shuffle counters plus both skew histograms. Worker is set
// on cluster snapshots: the owning rank on per-worker rows, the rank
// with the slowest task on merged rows.
type stageJSON struct {
	ID            int64    `json:"id"`
	Name          string   `json:"name"`
	Worker        string   `json:"worker,omitempty"`
	WallNs        int64    `json:"wall_ns"`
	Tasks         int64    `json:"tasks"`
	RecordsIn     int64    `json:"records_in"`
	RecordsOut    int64    `json:"records_out"`
	ShuffledBytes int64    `json:"shuffled_bytes"`
	TaskDurNs     distJSON `json:"task_dur_ns"`
	PartRecords   distJSON `json:"part_records"`
	Skew          float64  `json:"skew"`
	SkewWarning   string   `json:"skew_warning,omitempty"`
}

// adaptiveJSON is one stage-boundary rebalance event.
type adaptiveJSON struct {
	Stage        string   `json:"stage"`
	Before       distJSON `json:"before"`
	After        distJSON `json:"after"`
	MovedRecords int64    `json:"moved_records"`
	MovedGroups  int64    `json:"moved_groups"`
}

// stagesDoc is the /debug/stages.json document. On cluster snapshots
// Stages carries the merged view and WorkerStages every rank's own
// rows; locally WorkerStages is absent.
type stagesDoc struct {
	Stages       []stageJSON    `json:"stages"`
	WorkerStages []stageJSON    `json:"worker_stages,omitempty"`
	Stragglers   []string       `json:"stragglers,omitempty"`
	Adaptive     []adaptiveJSON `json:"adaptive,omitempty"`
	Totals       struct {
		ShuffledBytes   int64 `json:"shuffled_bytes"`
		ShuffledRecords int64 `json:"shuffled_records"`
		Rebalances      int64 `json:"adaptive_rebalances"`
		MovedRecords    int64 `json:"adaptive_moved_records"`
	} `json:"totals"`
}

func toStageJSON(st dataflow.StageMetric) stageJSON {
	row := stageJSON{
		ID: st.ID, Name: st.Name, Worker: st.Worker, WallNs: int64(st.Wall),
		Tasks: st.Tasks, RecordsIn: st.RecordsIn, RecordsOut: st.RecordsOut,
		ShuffledBytes: st.ShuffledBytes,
		TaskDurNs:     toDistJSON(st.TaskDur), PartRecords: toDistJSON(st.PartRecords),
		Skew: st.TaskDur.Skew(),
	}
	if w, ok := st.SkewWarning(0); ok {
		row.SkewWarning = w
	}
	return row
}

// StagesJSON builds the machine-readable per-stage document from a
// snapshot; exported so sacbench can embed the same shape in its
// benchmark artifacts.
func StagesJSON(m dataflow.MetricsSnapshot) any {
	var doc stagesDoc
	doc.Stages = make([]stageJSON, 0, len(m.PerStage))
	for _, st := range m.PerStage {
		doc.Stages = append(doc.Stages, toStageJSON(st))
	}
	for _, st := range m.WorkerStages {
		doc.WorkerStages = append(doc.WorkerStages, toStageJSON(st))
	}
	doc.Stragglers = m.StragglerWarnings(0)
	for _, e := range m.AdaptiveEvents {
		doc.Adaptive = append(doc.Adaptive, adaptiveJSON{
			Stage: e.Stage, Before: toDistJSON(e.Before), After: toDistJSON(e.After),
			MovedRecords: e.MovedRecords, MovedGroups: e.MovedGroups,
		})
	}
	doc.Totals.ShuffledBytes = m.ShuffledBytes
	doc.Totals.ShuffledRecords = m.ShuffledRecords
	doc.Totals.Rebalances = m.AdaptiveRebalances
	doc.Totals.MovedRecords = m.AdaptiveMovedRecords
	return doc
}

// Server is a running debug endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the endpoint on addr (for example "localhost:6060";
// ":0" picks a free port — read it back with Addr). src may be nil
// (see Source). Routes:
//
//	/debug/pprof/       the standard pprof index and profiles
//	/debug/metrics      the process-wide instrument registry in
//	                    Prometheus text exposition format
//	/debug/metrics.json the current MetricsSnapshot as JSON
//	/debug/stages       the per-stage execution table as text
//	/debug/stages.json  per-stage counters, Dist histograms, per-worker
//	                    rows (cluster), and adaptive rebalances as JSON
//	/debug/memory       memory budget and spill gauges as JSON
func Serve(addr string, src Source) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// snapshot gates the Source-backed handlers; the Prometheus and
	// pprof routes work regardless.
	snapshot := func(w http.ResponseWriter) (dataflow.MetricsSnapshot, bool) {
		if src == nil {
			http.Error(w, "no metrics source attached", http.StatusServiceUnavailable)
			return dataflow.MetricsSnapshot{}, false
		}
		return src.Metrics(), true
	}
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.Default.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		m, ok := snapshot(w)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(m); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/stages", func(w http.ResponseWriter, r *http.Request) {
		m, ok := snapshot(w)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, m.FormatStages())
	})
	mux.HandleFunc("/debug/stages.json", func(w http.ResponseWriter, r *http.Request) {
		m, ok := snapshot(w)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(StagesJSON(m)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/memory", func(w http.ResponseWriter, r *http.Request) {
		m, ok := snapshot(w)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(memorySnapshot{
			Budget:      m.MemoryBudget,
			Used:        m.MemoryUsed,
			Peak:        m.MemoryPeak,
			Waits:       m.BudgetWaits,
			Overcommits: m.MemoryOvercommits,
			CachedBytes: m.CachedBytes,
			Spilled: spillSnapshot{
				Bytes:       m.SpilledBytes,
				Records:     m.SpilledRecords,
				Files:       m.SpillFiles,
				MergePasses: m.MergePasses,
			},
		}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>SAC engine debug</h1><ul>
<li><a href="/debug/metrics">/debug/metrics</a> — Prometheus scrape target (text exposition)</li>
<li><a href="/debug/metrics.json">/debug/metrics.json</a> — live metrics snapshot (JSON)</li>
<li><a href="/debug/stages">/debug/stages</a> — per-stage execution table</li>
<li><a href="/debug/stages.json">/debug/stages.json</a> — per-stage counters, skew histograms, per-worker rows, adaptive rebalances (JSON)</li>
<li><a href="/debug/memory">/debug/memory</a> — memory budget and spill gauges (JSON)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiles</li>
</ul></body></html>`)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the listening address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
