// Package debug provides an opt-in HTTP endpoint for long engine runs:
// the standard net/http/pprof profiles plus a live JSON snapshot of the
// engine metrics and the per-stage execution table. Nothing listens
// unless a CLI is started with its -debug flag (or Serve is called
// directly), so the engine itself stays network-free.
package debug

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/dataflow"
)

// Source supplies live engine metrics. *dataflow.Context satisfies it,
// as does core.Session.
type Source interface {
	Metrics() dataflow.MetricsSnapshot
}

// memorySnapshot is the /debug/memory document: the budget manager's
// live gauges plus the cumulative spill counters, carved out of the
// full metrics snapshot so a watcher polling for memory pressure does
// not have to parse per-stage tables.
type memorySnapshot struct {
	Budget      int64         `json:"budget"`
	Used        int64         `json:"used"`
	Peak        int64         `json:"peak"`
	Waits       int64         `json:"waits"`
	Overcommits int64         `json:"overcommits"`
	CachedBytes int64         `json:"cached_bytes"`
	Spilled     spillSnapshot `json:"spilled"`
}

type spillSnapshot struct {
	Bytes       int64 `json:"bytes"`
	Records     int64 `json:"records"`
	Files       int64 `json:"files"`
	MergePasses int64 `json:"merge_passes"`
}

// Server is a running debug endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the endpoint on addr (for example "localhost:6060";
// ":0" picks a free port — read it back with Addr). Routes:
//
//	/debug/pprof/   the standard pprof index and profiles
//	/debug/metrics  the current MetricsSnapshot as JSON
//	/debug/stages   the per-stage execution table as text
//	/debug/memory   memory budget and spill gauges as JSON
func Serve(addr string, src Source) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(src.Metrics()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/stages", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, src.Metrics().FormatStages())
	})
	mux.HandleFunc("/debug/memory", func(w http.ResponseWriter, r *http.Request) {
		m := src.Metrics()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(memorySnapshot{
			Budget:      m.MemoryBudget,
			Used:        m.MemoryUsed,
			Peak:        m.MemoryPeak,
			Waits:       m.BudgetWaits,
			Overcommits: m.MemoryOvercommits,
			CachedBytes: m.CachedBytes,
			Spilled: spillSnapshot{
				Bytes:       m.SpilledBytes,
				Records:     m.SpilledRecords,
				Files:       m.SpillFiles,
				MergePasses: m.MergePasses,
			},
		}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>SAC engine debug</h1><ul>
<li><a href="/debug/metrics">/debug/metrics</a> — live metrics snapshot (JSON)</li>
<li><a href="/debug/stages">/debug/stages</a> — per-stage execution table</li>
<li><a href="/debug/memory">/debug/memory</a> — memory budget and spill gauges (JSON)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiles</li>
</ul></body></html>`)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the listening address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
