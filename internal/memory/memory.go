// Package memory implements the budgeted memory manager behind the
// engine's out-of-core execution: consumers (shuffle buffers, Persist
// caches, merged shuffle reads) reserve tracked bytes against a
// configurable budget and either get the grant, get denied (and spill
// to disk), or wait for other holders to release.
//
// A Manager is per-instance state, not a process singleton: each
// dataflow.Context owns its own (so concurrent sessions in one process
// never share or cross-contaminate budgets), and in a cluster each
// worker process sizes its own manager from its -mem flag — the
// per-worker budget.
//
// The API is nil-tolerant like the trace package: a nil *Manager means
// "unlimited, no accounting" and every method degenerates to a nil
// check, so the spill layer costs nothing when no budget is set.
//
// Liveness: a single in-process "cluster" can deadlock if every task
// holds a reservation and waits for the others, so Reserve never
// blocks forever. A waiter that sees no releases for a stall interval
// is granted anyway and counted as an overcommit; the acceptance
// contract is therefore "tracked peak <= budget + bounded slack", not
// a hard ceiling.
package memory

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EnvBudget is the environment variable both CLIs (and the out-of-core
// test suite) read for a default budget.
const EnvBudget = "SAC_MEMORY_BUDGET"

// DefaultStall is how long a blocked Reserve waits without observing
// any release before it is granted as an overcommit. It is several
// times a typical spill-merge duration, so waiters normally get their
// grant from a release and the valve only opens when progress truly
// stalls (e.g. every evictable byte is pinned by running tasks).
const DefaultStall = 250 * time.Millisecond

// Evictor frees up to need tracked bytes (by spilling cached data to
// disk) and returns how many bytes it released. Evictors must not call
// back into Reserve.
type Evictor func(need int64) (freed int64)

// Manager tracks reserved bytes against a budget. A nil Manager is the
// unlimited manager: grants everything, records nothing.
type Manager struct {
	budget int64
	stall  time.Duration

	mu          sync.Mutex
	used        int64
	peak        int64
	waits       int64
	overcommits int64
	releaseCh   chan struct{} // closed and replaced on every Release

	evictMu  sync.Mutex
	evictors map[int]Evictor
	nextEv   int
}

// New returns a manager enforcing the given budget in bytes. A
// non-positive budget means unlimited: New returns nil, which every
// method tolerates.
func New(budget int64) *Manager {
	if budget <= 0 {
		return nil
	}
	return &Manager{budget: budget, stall: DefaultStall, releaseCh: make(chan struct{})}
}

// SetStall overrides the stall-grant interval (tests use a short one).
func (m *Manager) SetStall(d time.Duration) {
	if m == nil || d <= 0 {
		return
	}
	m.mu.Lock()
	m.stall = d
	m.mu.Unlock()
}

// Budget returns the configured budget (0 = unlimited).
func (m *Manager) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}

// Used returns the currently reserved bytes.
func (m *Manager) Used() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Peak returns the high-water mark of reserved bytes.
func (m *Manager) Peak() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Waits returns how many Reserve calls had to block.
func (m *Manager) Waits() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waits
}

// Overcommits returns how many grants exceeded the budget (stall
// grants and oversized single requests).
func (m *Manager) Overcommits() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.overcommits
}

// ResetPeak sets the high-water mark back to the current usage;
// benchmarks call it between measured runs.
func (m *Manager) ResetPeak() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.peak = m.used
	m.mu.Unlock()
}

// TryReserve grants n bytes if they fit under the budget and reports
// whether it did. It never blocks, never evicts, and always succeeds on
// the nil (unlimited) manager.
func (m *Manager) TryReserve(n int64) bool {
	if m == nil || n <= 0 {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.used+n > m.budget {
		return false
	}
	m.grantLocked(n, false)
	return true
}

// grantLocked books n reserved bytes. Callers hold mu.
func (m *Manager) grantLocked(n int64, overcommit bool) {
	m.used += n
	if m.used > m.peak {
		m.peak = m.used
	}
	if overcommit {
		m.overcommits++
	}
}

// Reserve grants n bytes, in order of preference: immediately, after
// running the registered evictors, or after waiting for other holders
// to release. A waiter that observes no release within the stall
// interval — or whose request alone exceeds the whole budget — is
// granted as an overcommit so a single-process pipeline can never
// deadlock on its own budget.
func (m *Manager) Reserve(n int64) {
	if m == nil || n <= 0 {
		return
	}
	if m.TryReserve(n) {
		return
	}
	m.Evict(n)
	if m.TryReserve(n) {
		return
	}
	m.mu.Lock()
	m.waits++
	for {
		if m.used+n <= m.budget {
			m.grantLocked(n, false)
			m.mu.Unlock()
			return
		}
		if m.used == 0 || n > m.budget {
			// Nothing to wait for, or the request can never fit.
			m.grantLocked(n, true)
			m.mu.Unlock()
			return
		}
		ch, stall := m.releaseCh, m.stall
		m.mu.Unlock()
		timer := time.NewTimer(stall)
		select {
		case <-ch:
			timer.Stop()
			m.mu.Lock()
		case <-timer.C:
			// One more eviction attempt before opening the valve:
			// memory may have become evictable since the first try.
			m.Evict(n)
			m.mu.Lock()
			if m.used+n > m.budget {
				// Stalled: grant over budget rather than deadlock.
				m.grantLocked(n, true)
				m.mu.Unlock()
				return
			}
		}
	}
}

// Release returns n reserved bytes and wakes blocked reservers.
func (m *Manager) Release(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.mu.Lock()
	m.used -= n
	if m.used < 0 {
		m.used = 0
	}
	close(m.releaseCh)
	m.releaseCh = make(chan struct{})
	m.mu.Unlock()
}

// RegisterEvictor adds an eviction callback (a spillable cache) and
// returns its unregister function.
func (m *Manager) RegisterEvictor(e Evictor) (unregister func()) {
	if m == nil {
		return func() {}
	}
	m.evictMu.Lock()
	if m.evictors == nil {
		m.evictors = make(map[int]Evictor)
	}
	id := m.nextEv
	m.nextEv++
	m.evictors[id] = e
	m.evictMu.Unlock()
	return func() {
		m.evictMu.Lock()
		delete(m.evictors, id)
		m.evictMu.Unlock()
	}
}

// Evict asks the registered evictors to free at least need bytes,
// stopping early once enough was released; it returns the total freed.
func (m *Manager) Evict(need int64) int64 {
	if m == nil || need <= 0 {
		return 0
	}
	m.evictMu.Lock()
	evs := make([]Evictor, 0, len(m.evictors))
	for _, e := range m.evictors {
		evs = append(evs, e)
	}
	m.evictMu.Unlock()
	var freed int64
	for _, e := range evs {
		freed += e(need - freed)
		if freed >= need {
			break
		}
	}
	return freed
}

// Stats is a gauge snapshot for metrics and the debug endpoint.
type Stats struct {
	Budget, Used, Peak, Waits, Overcommits int64
}

// Stats snapshots the manager's gauges (all zero on nil).
func (m *Manager) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Budget: m.budget, Used: m.used, Peak: m.peak,
		Waits: m.waits, Overcommits: m.overcommits}
}

// ParseBytes parses a human byte size: a plain integer is bytes, and
// the suffixes K/M/G/T (optionally as KB/KiB etc., case-insensitive)
// are binary multiples of 1024, Spark-style ("64MiB", "64m" and "64MB"
// all mean 64 * 2^20).
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("memory: empty size")
	}
	t = strings.TrimSuffix(t, "b")
	t = strings.TrimSuffix(t, "i")
	var mult int64 = 1
	if n := len(t); n > 0 {
		switch t[n-1] {
		case 'k':
			mult = 1 << 10
		case 'm':
			mult = 1 << 20
		case 'g':
			mult = 1 << 30
		case 't':
			mult = 1 << 40
		}
		if mult > 1 {
			t = strings.TrimSpace(t[:n-1])
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("memory: bad size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// FormatBytes renders n as a compact binary size ("64.0MiB").
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGT"[exp])
}

// BudgetFromEnv returns the budget named by SAC_MEMORY_BUDGET, or def
// when the variable is unset or unparsable.
func BudgetFromEnv(def int64) int64 {
	s := os.Getenv(EnvBudget)
	if s == "" {
		return def
	}
	v, err := ParseBytes(s)
	if err != nil {
		return def
	}
	return v
}
