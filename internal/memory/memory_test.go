package memory

import (
	"sync"
	"testing"
	"time"
)

func TestNilManagerIsUnlimited(t *testing.T) {
	var m *Manager
	if !m.TryReserve(1 << 40) {
		t.Fatal("nil manager denied a reservation")
	}
	m.Reserve(1 << 40)
	m.Release(1 << 40)
	if m.Budget() != 0 || m.Used() != 0 || m.Peak() != 0 {
		t.Fatal("nil manager reported nonzero gauges")
	}
	if s := m.Stats(); s != (Stats{}) {
		t.Fatalf("nil manager stats = %+v", s)
	}
	if New(0) != nil || New(-1) != nil {
		t.Fatal("non-positive budget should yield the nil manager")
	}
}

func TestTryReserveDeniesOverBudget(t *testing.T) {
	m := New(100)
	if !m.TryReserve(60) {
		t.Fatal("first reserve denied")
	}
	if m.TryReserve(60) {
		t.Fatal("over-budget reserve granted")
	}
	if !m.TryReserve(40) {
		t.Fatal("exact-fit reserve denied")
	}
	if got := m.Used(); got != 100 {
		t.Fatalf("used = %d, want 100", got)
	}
	m.Release(100)
	if got := m.Used(); got != 0 {
		t.Fatalf("used after release = %d, want 0", got)
	}
	if got := m.Peak(); got != 100 {
		t.Fatalf("peak = %d, want 100", got)
	}
}

func TestReserveWaitsForRelease(t *testing.T) {
	m := New(100)
	m.SetStall(10 * time.Second) // force the wait path, not the stall grant
	m.Reserve(80)
	done := make(chan struct{})
	go func() {
		m.Reserve(50) // must wait: 80+50 > 100
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Reserve returned before a release made room")
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(80)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Reserve did not wake after release")
	}
	if m.Waits() == 0 {
		t.Fatal("blocked Reserve not counted as a wait")
	}
	if m.Overcommits() != 0 {
		t.Fatalf("overcommits = %d, want 0", m.Overcommits())
	}
}

func TestReserveStallGrantAvoidsDeadlock(t *testing.T) {
	m := New(100)
	m.SetStall(5 * time.Millisecond)
	m.Reserve(90)
	done := make(chan struct{})
	go func() {
		m.Reserve(50) // nobody will release; stall grant must fire
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stalled Reserve never granted")
	}
	if m.Overcommits() == 0 {
		t.Fatal("stall grant not counted as overcommit")
	}
	if m.Used() != 140 {
		t.Fatalf("used = %d, want 140", m.Used())
	}
}

func TestOversizedRequestGrantsImmediately(t *testing.T) {
	m := New(100)
	m.SetStall(10 * time.Second)
	start := time.Now()
	m.Reserve(500) // larger than the whole budget: cannot ever fit
	if time.Since(start) > time.Second {
		t.Fatal("oversized request blocked")
	}
	if m.Overcommits() == 0 {
		t.Fatal("oversized grant not counted as overcommit")
	}
}

func TestEvictorsRunOnPressure(t *testing.T) {
	m := New(100)
	var evicted int64
	var mu sync.Mutex
	unreg := m.RegisterEvictor(func(need int64) int64 {
		mu.Lock()
		defer mu.Unlock()
		evicted += need
		m.Release(need) // simulate a cache spilling to disk
		return need
	})
	m.Reserve(100)
	m.Reserve(30) // pressure: evictor must free 30
	mu.Lock()
	ev := evicted
	mu.Unlock()
	if ev < 30 {
		t.Fatalf("evicted = %d, want >= 30", ev)
	}
	unreg()
	if m.Evict(10) != 0 {
		t.Fatal("unregistered evictor still ran")
	}
}

func TestResetPeak(t *testing.T) {
	m := New(100)
	m.Reserve(80)
	m.Release(80)
	m.ResetPeak()
	if got := m.Peak(); got != 0 {
		t.Fatalf("peak after reset = %d, want 0", got)
	}
}

func TestConcurrentReserveRelease(t *testing.T) {
	m := New(1 << 20)
	m.SetStall(time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.Reserve(4096)
				m.Release(4096)
			}
		}()
	}
	wg.Wait()
	if got := m.Used(); got != 0 {
		t.Fatalf("used after balanced reserve/release = %d, want 0", got)
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"1024":   1024,
		"64k":    64 << 10,
		"64K":    64 << 10,
		"64KB":   64 << 10,
		"64KiB":  64 << 10,
		"64MiB":  64 << 20,
		"64m":    64 << 20,
		"1.5g":   3 << 29,
		"2t":     2 << 40,
		" 8MiB ": 8 << 20,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "-5", "MiB", "12q"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Fatalf("ParseBytes(%q) should fail", bad)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:      "512B",
		64 << 10: "64.0KiB",
		64 << 20: "64.0MiB",
		3 << 29:  "1.5GiB",
		1 << 40:  "1.0TiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBudgetFromEnv(t *testing.T) {
	t.Setenv(EnvBudget, "64MiB")
	if got := BudgetFromEnv(1); got != 64<<20 {
		t.Fatalf("BudgetFromEnv = %d, want %d", got, 64<<20)
	}
	t.Setenv(EnvBudget, "")
	if got := BudgetFromEnv(42); got != 42 {
		t.Fatalf("BudgetFromEnv default = %d, want 42", got)
	}
	t.Setenv(EnvBudget, "garbage")
	if got := BudgetFromEnv(42); got != 42 {
		t.Fatalf("BudgetFromEnv on garbage = %d, want 42", got)
	}
}
