package ml

import (
	"math/rand"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/linalg"
	"repro/internal/tiled"
)

// Three well-separated Gaussian blobs: k-means must place one centroid
// near each blob center and converge.
func TestKMeansSeparatedBlobs(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	rng := rand.New(rand.NewSource(5))
	centers := [][2]float64{{0, 0}, {10, 10}, {-10, 10}}
	const perBlob = 40
	d := linalg.NewDense(3*perBlob, 2)
	for b, c := range centers {
		for i := 0; i < perBlob; i++ {
			row := b*perBlob + i
			d.Set(row, 0, c[0]+rng.NormFloat64()*0.5)
			d.Set(row, 1, c[1]+rng.NormFloat64()*0.5)
		}
	}
	// Shuffle rows so initial centroids (first k rows) are arbitrary.
	perm := rng.Perm(3 * perBlob)
	shuffled := linalg.NewDense(3*perBlob, 2)
	for i, p := range perm {
		shuffled.Set(i, 0, d.At(p, 0))
		shuffled.Set(i, 1, d.At(p, 1))
	}
	x := tiled.FromDense(ctx, shuffled, 16, 4)
	res := KMeans(x, 3, 50, 1e-6)

	if res.Iterations == 0 || res.Iterations >= 50 {
		t.Fatalf("iterations %d", res.Iterations)
	}
	// Each true center must have a centroid within distance 1.
	for _, c := range centers {
		found := false
		for k := 0; k < 3; k++ {
			dx := res.Centroids.At(k, 0) - c[0]
			dy := res.Centroids.At(k, 1) - c[1]
			if dx*dx+dy*dy < 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no centroid near %v: %v", c, res.Centroids)
		}
	}
	// Inertia should be near perBlob*3*(2*0.25) = expected noise energy.
	if res.Inertia > 150 {
		t.Fatalf("inertia %v too high", res.Inertia)
	}
}

// Points spanning multiple column tiles (dims > tile size) are
// reassembled correctly.
func TestKMeansWideFeatures(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	// dims=5 with tile 2: each point spans 3 column tiles.
	d := linalg.NewDense(8, 5)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			d.Set(i, j, 1)
			d.Set(4+i, j, 9)
		}
	}
	x := tiled.FromDense(ctx, d, 2, 2)
	res := KMeans(x, 2, 20, 1e-9)
	// Two exact clusters: centroids must be the all-1 and all-9 points.
	got := []float64{res.Centroids.At(0, 0), res.Centroids.At(1, 0)}
	if !(got[0] == 1 && got[1] == 9 || got[0] == 9 && got[1] == 1) {
		t.Fatalf("centroids %v", res.Centroids)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("inertia %v should be 0", res.Inertia)
	}
}

func TestKMeansEmptyClusterKeepsCentroid(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	// Identical points: with k=2, one cluster goes empty and must keep
	// its previous centroid without NaNs.
	d := linalg.NewDense(6, 2)
	for i := 0; i < 6; i++ {
		d.Set(i, 0, 3)
		d.Set(i, 1, 4)
	}
	x := tiled.FromDense(ctx, d, 4, 2)
	res := KMeans(x, 2, 10, 1e-9)
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			v := res.Centroids.At(k, j)
			if v != 3 && v != 4 {
				t.Fatalf("centroid value %v", v)
			}
		}
	}
}

func TestKMeansPanicsOnTooManyClusters(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	x := tiled.FromDense(ctx, linalg.NewDense(2, 2), 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KMeans(x, 5, 3, 1e-9)
}

func TestToDenseRows(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	d := linalg.RandDense(9, 5, 0, 1, 31)
	x := tiled.FromDense(ctx, d, 2, 3)
	got := x.ToDenseRows(3, 7)
	if got.Rows != 4 || got.Cols != 5 {
		t.Fatalf("dims %dx%d", got.Rows, got.Cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if got.At(i, j) != d.At(3+i, j) {
				t.Fatalf("row slice mismatch at (%d,%d)", i, j)
			}
		}
	}
}
