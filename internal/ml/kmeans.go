package ml

import (
	"math"

	"repro/internal/dataflow"
	"repro/internal/linalg"
	"repro/internal/tiled"
)

// K-means clustering over a distributed tiled matrix of observations
// (rows are points). Each Lloyd iteration is one dataflow pass: tiles
// assign their rows to the nearest centroid locally and emit partial
// (sum, count) accumulators per cluster, which reduce by cluster id —
// the same per-tile partial aggregation + reduceByKey shape as the
// paper's Section 5.3 translations. Centroids are small (k x dims) and
// travel to the tasks by closure, playing Spark's broadcast variable.
//
// The row/tile split: a point's features may span several tiles in a
// tile row, so assignment first reassembles tile rows; with the usual
// configuration dims <= tile size, each tile row is a single tile.

// KMeansResult holds the fitted model.
type KMeansResult struct {
	Centroids *linalg.Dense // k x dims
	// Inertia is the final sum of squared distances to the assigned
	// centroids.
	Inertia float64
	// Iterations actually run (may be fewer than requested on
	// convergence).
	Iterations int
}

// KMeans runs Lloyd's algorithm on the rows of X, seeded with greedy
// farthest-point initialization. tol stops iteration when no centroid
// moves more than tol (Euclidean).
func KMeans(x *tiled.Matrix, k int, maxIter int, tol float64) *KMeansResult {
	if int64(k) > x.Rows {
		panic("ml: more clusters than points")
	}
	// The observations are traversed once per seeding round and once
	// per Lloyd iteration; pin them for the duration, but only release
	// a cache this call created (a caller's Persist stays in force).
	if !x.Tiles.IsPersisted() {
		x.Tiles.Persist()
		defer x.Tiles.Unpersist()
	}
	dims := int(x.Cols)
	centroids := initFarthest(x, k)

	var inertia float64
	it := 0
	for ; it < maxIter; it++ {
		sums, counts, sse := assignStep(x, centroids)
		inertia = sse
		next := linalg.NewDense(k, dims)
		maxMove := 0.0
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Empty cluster keeps its previous centroid.
				for j := 0; j < dims; j++ {
					next.Set(c, j, centroids.At(c, j))
				}
				continue
			}
			var move float64
			for j := 0; j < dims; j++ {
				v := sums.At(c, j) / float64(counts[c])
				next.Set(c, j, v)
				d := v - centroids.At(c, j)
				move += d * d
			}
			if m := math.Sqrt(move); m > maxMove {
				maxMove = m
			}
		}
		centroids = next
		if maxMove <= tol {
			it++
			break
		}
	}
	return &KMeansResult{Centroids: centroids, Inertia: inertia, Iterations: it}
}

// initFarthest seeds centroids with greedy farthest-point traversal
// (the deterministic 2-approximation for k-center): the first point,
// then repeatedly the point farthest from its nearest chosen centroid.
// Robust against the local optima that naive first-k seeding hits on
// well-separated blobs. Each selection is one distributed pass.
func initFarthest(x *tiled.Matrix, k int) *linalg.Dense {
	dims := int(x.Cols)
	centroids := x.ToDenseRows(0, 1)
	for chosen := 1; chosen < k; chosen++ {
		cur := centroids
		type cand struct {
			Dist  float64
			Point []float64
		}
		byRow := dataflow.GroupByKey(
			dataflow.Map(x.Tiles, func(b tiled.Block) dataflow.Pair[int64, tiled.Block] {
				return dataflow.KV(b.Key.I, b)
			}), x.Tiles.NumPartitions())
		far := dataflow.Map(byRow, func(g dataflow.Pair[int64, []tiled.Block]) cand {
			best := cand{Dist: -1}
			point := make([]float64, dims)
			rowOff := g.Key * int64(x.N)
			for li := 0; li < x.N; li++ {
				if rowOff+int64(li) >= x.Rows {
					break
				}
				for _, b := range g.Value {
					colOff := int(b.Key.J) * x.N
					for lj := 0; lj < x.N; lj++ {
						if colOff+lj < dims {
							point[colOff+lj] = b.Value.At(li, lj)
						}
					}
				}
				nearest := math.Inf(1)
				for c := 0; c < cur.Rows; c++ {
					var d float64
					for j := 0; j < dims; j++ {
						diff := point[j] - cur.At(c, j)
						d += diff * diff
					}
					if d < nearest {
						nearest = d
					}
				}
				if nearest > best.Dist {
					best = cand{Dist: nearest, Point: append([]float64(nil), point...)}
				}
			}
			return best
		})
		winner := dataflow.Reduce(far, func(a, b cand) cand {
			if a.Dist >= b.Dist {
				return a
			}
			return b
		})
		next := linalg.NewDense(cur.Rows+1, dims)
		next.CopyInto(cur, 0, 0)
		for j := 0; j < dims; j++ {
			next.Set(cur.Rows, j, winner.Point[j])
		}
		centroids = next
	}
	return centroids
}

// assignStep performs one distributed assignment pass: per tile row,
// assign each point to its nearest centroid and emit partial sums and
// counts; reduce across tiles.
func assignStep(x *tiled.Matrix, centroids *linalg.Dense) (*linalg.Dense, []int64, float64) {
	k := centroids.Rows
	dims := int(x.Cols)
	n := x.N
	rows := x.Rows

	type acc struct {
		Sums   *linalg.Dense
		Counts []int64
		SSE    float64
	}
	// Group the tiles of each tile row so points split across column
	// tiles are reassembled.
	byRow := dataflow.GroupByKey(
		dataflow.Map(x.Tiles, func(b tiled.Block) dataflow.Pair[int64, tiled.Block] {
			return dataflow.KV(b.Key.I, b)
		}), x.Tiles.NumPartitions())

	partials := dataflow.Map(byRow, func(g dataflow.Pair[int64, []tiled.Block]) *acc {
		a := &acc{Sums: linalg.NewDense(k, dims), Counts: make([]int64, k)}
		point := make([]float64, dims)
		rowOff := g.Key * int64(n)
		for li := 0; li < n; li++ {
			gi := rowOff + int64(li)
			if gi >= rows {
				break
			}
			// Reassemble the point from this tile row's tiles.
			for _, b := range g.Value {
				colOff := int(b.Key.J) * n
				for lj := 0; lj < n; lj++ {
					if colOff+lj < dims {
						point[colOff+lj] = b.Value.At(li, lj)
					}
				}
			}
			best, bestDist := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				var d float64
				for j := 0; j < dims; j++ {
					diff := point[j] - centroids.At(c, j)
					d += diff * diff
				}
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			a.Counts[best]++
			a.SSE += bestDist
			for j := 0; j < dims; j++ {
				a.Sums.Add(best, j, point[j])
			}
		}
		return a
	})
	total := dataflow.Reduce(partials, func(a, b *acc) *acc {
		linalg.AddInPlace(a.Sums, b.Sums)
		for i := range a.Counts {
			a.Counts[i] += b.Counts[i]
		}
		a.SSE += b.SSE
		return a
	})
	return total.Sums, total.Counts, total.SSE
}
