// Package ml implements the third evaluation workload of the paper
// (Section 6, Figure 4.C): one iteration of gradient-descent matrix
// factorization [Koren et al.],
//
//	E <- R - P x Q^T
//	P <- P + gamma * (2 E x Q - lambda P)
//	Q <- Q + gamma * (2 E^T x P - lambda Q)
//
// in three variants: dense single-node (the correctness oracle), SAC
// on tiled matrices with group-by-join multiplications, and the MLlib
// BlockMatrix baseline.
package ml

import (
	"repro/internal/dataflow"
	"repro/internal/linalg"
	"repro/internal/mllib"
	"repro/internal/tiled"
)

// Config holds the gradient-descent hyperparameters; the paper used
// gamma = 0.002 and lambda = 0.02.
type Config struct {
	Gamma  float64
	Lambda float64
}

// PaperConfig returns the paper's hyperparameters.
func PaperConfig() Config { return Config{Gamma: 0.002, Lambda: 0.02} }

// StepDense runs one factorization iteration on dense matrices; the
// reference the distributed variants are tested against.
func StepDense(r, p, q *linalg.Dense, cfg Config) (*linalg.Dense, *linalg.Dense) {
	// E = R - P Q^T
	e := r.Clone()
	pq := linalg.NewDense(p.Rows, q.Rows)
	linalg.GemmTransB(pq, p, q)
	linalg.SubInPlace(e, pq)

	// P' = P + gamma (2 E Q - lambda P)
	eq := linalg.Mul(e, q)
	pNew := p.Clone()
	linalg.AXPYInPlace(pNew, 2*cfg.Gamma, eq)
	linalg.AXPYInPlace(pNew, -cfg.Gamma*cfg.Lambda, p)

	// Q' = Q + gamma (2 E^T P - lambda Q)
	etp := linalg.NewDense(e.Cols, p.Cols)
	linalg.GemmTransA(etp, e, p)
	qNew := q.Clone()
	linalg.AXPYInPlace(qNew, 2*cfg.Gamma, etp)
	linalg.AXPYInPlace(qNew, -cfg.Gamma*cfg.Lambda, q)
	return pNew, qNew
}

// StepTiled runs one iteration on tiled matrices using the SAC
// group-by-join multiplications (the paper's "SAC GBJ" line) and
// tiling-preserving updates. R is n x m, P is n x k, Q is m x k.
func StepTiled(r, p, q *tiled.Matrix, cfg Config) (*tiled.Matrix, *tiled.Matrix) {
	e := r.Sub(p.MultiplyTransBGBJ(q))
	pNew := p.AXPY(2*cfg.Gamma, e.MultiplyGBJ(q)).AXPY(-cfg.Gamma*cfg.Lambda, p)
	qNew := q.AXPY(2*cfg.Gamma, e.MultiplyTransAGBJ(p)).AXPY(-cfg.Gamma*cfg.Lambda, q)
	return pNew, qNew
}

// StepTiledJoin is the same computation with the non-GBJ join +
// reduceByKey multiplications (ablation; the paper only reports GBJ
// for factorization). Transposes are materialized since the plain
// multiply has no transposed variants.
func StepTiledJoin(r, p, q *tiled.Matrix, cfg Config) (*tiled.Matrix, *tiled.Matrix) {
	e := r.Sub(p.Multiply(q.Transpose()))
	pNew := p.AXPY(2*cfg.Gamma, e.Multiply(q)).AXPY(-cfg.Gamma*cfg.Lambda, p)
	qNew := q.AXPY(2*cfg.Gamma, e.Transpose().Multiply(p)).AXPY(-cfg.Gamma*cfg.Lambda, q)
	return pNew, qNew
}

// StepMLlib runs one iteration on MLlib BlockMatrices, composing the
// library operators the way an MLlib user must (transpose is
// materialized; updates use scale/add).
func StepMLlib(r, p, q *mllib.BlockMatrix, cfg Config) (*mllib.BlockMatrix, *mllib.BlockMatrix) {
	e := r.Subtract(p.Multiply(q.Transpose()))
	pNew := p.Add(e.Multiply(q).Scale(2 * cfg.Gamma)).Add(p.Scale(-cfg.Gamma * cfg.Lambda))
	qNew := q.Add(e.Transpose().Multiply(p).Scale(2 * cfg.Gamma)).Add(q.Scale(-cfg.Gamma * cfg.Lambda))
	return pNew, qNew
}

// Factorize runs iters gradient-descent iterations with SAC GBJ
// multiplications, managing the tile cache across iterations: each new
// iterate (P', Q') is persisted and materialized, then the superseded
// iterate is recycled — its cached tiles go back to the context tile
// pool and the cache entry is dropped — so the cache holds only R and
// the live factors instead of pinning every iteration's tiles, and the
// next iteration's kernels allocate nothing.
func Factorize(r, p, q *tiled.Matrix, iters int, cfg Config) (*tiled.Matrix, *tiled.Matrix) {
	if !r.Tiles.IsPersisted() {
		r.Persist()
		defer r.Unpersist()
	}
	for i := 0; i < iters; i++ {
		np, nq := StepTiled(r, p, q, cfg)
		np.Persist()
		nq.Persist()
		dataflow.Count(np.Tiles)
		dataflow.Count(nq.Tiles)
		if i > 0 {
			// p and q were persisted by the previous round of this
			// loop and their tiles are owned solely by that round's
			// lineage (AXPY clones; np/nq are already materialized),
			// so the superseded factors can be recycled into the tile
			// pool. The caller's original factors stay untouched.
			p.Recycle()
			q.Recycle()
		}
		p, q = np, nq
	}
	return p, q
}

// Loss returns the squared Frobenius error ||R - P Q^T||^2 of a tiled
// factorization, used to check that iterations decrease the objective.
func Loss(r, p, q *tiled.Matrix) float64 {
	return r.Sub(p.MultiplyTransBGBJ(q)).FrobeniusNorm2()
}
