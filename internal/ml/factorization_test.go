package ml

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/linalg"
	"repro/internal/mllib"
	"repro/internal/tiled"
)

// factorization fixture: sparse-ish R (10% of the paper's setup,
// values in (0,5]) and dense P, Q in [0,1).
func fixture(n, m, k int) (*linalg.Dense, *linalg.Dense, *linalg.Dense) {
	r := linalg.RandSparseCOO(n, m, 0.1, 5, 42).ToDense()
	p := linalg.RandDense(n, k, 0, 1, 43)
	q := linalg.RandDense(m, k, 0, 1, 44)
	return r, p, q
}

func TestStepTiledMatchesDense(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	r, p, q := fixture(12, 10, 4)
	wantP, wantQ := StepDense(r, p, q, PaperConfig())

	tr := tiled.FromDense(ctx, r, 3, 3)
	tp := tiled.FromDense(ctx, p, 3, 3)
	tq := tiled.FromDense(ctx, q, 3, 3)
	gotP, gotQ := StepTiled(tr, tp, tq, PaperConfig())
	if !gotP.ToDense().EqualApprox(wantP, 1e-9) {
		t.Fatalf("tiled P mismatch: %g", gotP.ToDense().MaxAbsDiff(wantP))
	}
	if !gotQ.ToDense().EqualApprox(wantQ, 1e-9) {
		t.Fatalf("tiled Q mismatch: %g", gotQ.ToDense().MaxAbsDiff(wantQ))
	}
}

func TestStepTiledJoinMatchesDense(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	r, p, q := fixture(10, 8, 4)
	wantP, wantQ := StepDense(r, p, q, PaperConfig())

	tr := tiled.FromDense(ctx, r, 2, 3)
	tp := tiled.FromDense(ctx, p, 2, 3)
	tq := tiled.FromDense(ctx, q, 2, 3)
	gotP, gotQ := StepTiledJoin(tr, tp, tq, PaperConfig())
	if !gotP.ToDense().EqualApprox(wantP, 1e-9) {
		t.Fatal("tiled-join P mismatch")
	}
	if !gotQ.ToDense().EqualApprox(wantQ, 1e-9) {
		t.Fatal("tiled-join Q mismatch")
	}
}

func TestStepMLlibMatchesDense(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	r, p, q := fixture(12, 10, 4)
	wantP, wantQ := StepDense(r, p, q, PaperConfig())

	br := mllib.FromDense(ctx, r, 3, 3)
	bp := mllib.FromDense(ctx, p, 3, 3)
	bq := mllib.FromDense(ctx, q, 3, 3)
	gotP, gotQ := StepMLlib(br, bp, bq, PaperConfig())
	if !gotP.ToDense().EqualApprox(wantP, 1e-9) {
		t.Fatal("mllib P mismatch")
	}
	if !gotQ.ToDense().EqualApprox(wantQ, 1e-9) {
		t.Fatal("mllib Q mismatch")
	}
}

// Repeated iterations decrease the squared Frobenius loss (gradient
// descent sanity check on all three implementations).
func TestIterationsDecreaseLoss(t *testing.T) {
	ctx := dataflow.NewLocalContext()
	r, p, q := fixture(15, 12, 3)
	tr := tiled.FromDense(ctx, r, 4, 3)
	tp := tiled.FromDense(ctx, p, 4, 3)
	tq := tiled.FromDense(ctx, q, 4, 3)
	cfg := PaperConfig()
	prev := Loss(tr, tp, tq)
	for it := 0; it < 5; it++ {
		tp, tq = StepTiled(tr, tp, tq, cfg)
		cur := Loss(tr, tp, tq)
		if cur > prev {
			t.Fatalf("loss increased at iteration %d: %v -> %v", it, prev, cur)
		}
		prev = cur
	}
}

func TestStepTiledWithFailureInjection(t *testing.T) {
	clean := dataflow.NewLocalContext()
	faulty := dataflow.NewContext(dataflow.Config{FailureRate: 0.15, FailureSeed: 9, MaxTaskRetries: 80})
	r, p, q := fixture(8, 8, 4)
	cfg := PaperConfig()

	wantP, _ := StepTiled(tiled.FromDense(clean, r, 2, 2), tiled.FromDense(clean, p, 2, 2), tiled.FromDense(clean, q, 2, 2), cfg)
	gotP, _ := StepTiled(tiled.FromDense(faulty, r, 2, 2), tiled.FromDense(faulty, p, 2, 2), tiled.FromDense(faulty, q, 2, 2), cfg)
	if !gotP.ToDense().EqualApprox(wantP.ToDense(), 1e-9) {
		t.Fatal("failure injection changed factorization result")
	}
}
