// Quickstart: register a block matrix, run the paper's Figure 1
// running example V_i = sum_j M_ij as a SAC comprehension, inspect the
// chosen plan and the engine metrics, and cross-check the result with
// the local reference evaluator.
package main

import (
	"fmt"
	"log"

	"repro/internal/comp"
	"repro/internal/core"
	"repro/internal/linalg"
)

func main() {
	// A session owns a simulated cluster; tiles are 100x100 like a
	// scaled-down version of the paper's 1000x1000 setup.
	s := core.NewSession(core.Config{TileSize: 100})

	// A 600x600 random matrix, generated tile-by-tile on the
	// "cluster" (no driver-side copy).
	s.RegisterRandMatrix("M", 600, 600, 0, 10, 42)
	s.RegisterScalar("n", int64(600))

	// The paper's Query (2): row sums over a tiled matrix.
	src := "tiledvec(n)[ (i, +/m) | ((i,j),m) <- M, group by i ]"

	plan, err := s.Explain(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:   ", plan)

	v, err := s.QueryVector(src)
	if err != nil {
		log.Fatal(err)
	}
	rowSums := v.ToDense()
	fmt.Printf("result:  %d row sums, first three: %.3f %.3f %.3f\n",
		rowSums.Len(), rowSums.At(0), rowSums.At(1), rowSums.At(2))
	fmt.Println("metrics:", s.Metrics())

	// Cross-check against the single-node reference evaluator on a
	// small matrix (Sections 2-3 semantics).
	small := linalg.RandDense(4, 3, 0, 10, 7)
	local, err := core.EvalLocal(
		"vector(4)[ (i, +/m) | ((i,j),m) <- M, group by i ]",
		map[string]comp.Value{"M": comp.MatrixStorage{M: small}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("local evaluator on a 4x3 matrix:", local.(comp.VectorStorage).V.Data)
	fmt.Println("dense reference:                ", small.RowSums().Data)
}
