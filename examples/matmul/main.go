// Matmul: the paper's Query (9) — matrix multiplication written as a
// declarative comprehension with group-by — compiled three ways:
// the SUMMA group-by-join (Section 5.4), join + reduceByKey
// (Section 5.3), and join + groupByKey (Rule 13 disabled). The example
// prints each plan, its runtime, and its shuffle volume, and verifies
// all three agree.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/opt"
)

const (
	side = 400
	tile = 50
)

var query = `tiled(n,n)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,
               kk == k, let v = a*b, group by (i,j) ]`

func run(opts opt.Options) (*linalg.Dense, time.Duration) {
	s := core.NewSession(core.Config{TileSize: tile, Optimizations: opts})
	s.RegisterRandMatrix("A", side, side, 0, 10, 1)
	s.RegisterRandMatrix("B", side, side, 0, 10, 2)
	s.RegisterScalar("n", int64(side))

	plan, err := s.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	m, err := s.QueryMatrix(query)
	if err != nil {
		log.Fatal(err)
	}
	d := m.ToDense()
	elapsed := time.Since(start)
	fmt.Printf("%-90s %8.3fs  shuffled %6.1f MB\n",
		plan, elapsed.Seconds(), float64(s.Metrics().ShuffledBytes)/(1<<20))
	return d, elapsed
}

func main() {
	fmt.Printf("multiplying two %dx%d matrices (tile %d), three translations of the same query:\n\n", side, side, tile)
	gbj, _ := run(opt.Options{})
	rbk, _ := run(opt.Options{DisableGBJ: true})
	gbk, _ := run(opt.Options{DisableGBJ: true, DisableReduceByKey: true})

	if !gbj.EqualApprox(rbk, 1e-6) || !gbj.EqualApprox(gbk, 1e-6) {
		log.Fatal("translations disagree!")
	}
	fmt.Println("\nall three translations produced identical results")
}
