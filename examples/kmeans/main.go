// K-means: Lloyd's algorithm over a distributed tiled matrix of
// observations. Each iteration is one dataflow pass with the same
// per-tile partial aggregation + reduce shape as the paper's
// Section 5.3 translations; centroids travel to tasks by closure
// (Spark's broadcast-variable role).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataflow"
	"repro/internal/linalg"
	"repro/internal/ml"
	"repro/internal/tiled"
)

func main() {
	const (
		perBlob = 1500
		k       = 4
		dims    = 8
		tile    = 100
	)
	rng := rand.New(rand.NewSource(9))

	// Four Gaussian blobs in 8 dimensions.
	centers := linalg.NewDense(k, dims)
	for c := 0; c < k; c++ {
		for j := 0; j < dims; j++ {
			centers.Set(c, j, float64(c*7)+rng.Float64())
		}
	}
	data := linalg.NewDense(k*perBlob, dims)
	for c := 0; c < k; c++ {
		for i := 0; i < perBlob; i++ {
			for j := 0; j < dims; j++ {
				data.Set(c*perBlob+i, j, centers.At(c, j)+rng.NormFloat64()*0.4)
			}
		}
	}
	perm := rng.Perm(k * perBlob)
	shuffled := linalg.NewDense(k*perBlob, dims)
	for i, p := range perm {
		for j := 0; j < dims; j++ {
			shuffled.Set(i, j, data.At(p, j))
		}
	}

	ctx := dataflow.NewLocalContext()
	x := tiled.FromDense(ctx, shuffled, tile, 8).Persist()

	res := ml.KMeans(x, k, 50, 1e-6)
	fmt.Printf("clustered %d points (%d dims) into %d clusters in %d iterations\n",
		k*perBlob, dims, k, res.Iterations)
	fmt.Printf("inertia: %.1f\n", res.Inertia)

	// Every true center must be matched by some fitted centroid.
	for c := 0; c < k; c++ {
		best := 1e18
		for f := 0; f < k; f++ {
			var d float64
			for j := 0; j < dims; j++ {
				diff := res.Centroids.At(f, j) - centers.At(c, j)
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		if best > 1 {
			log.Fatalf("no centroid recovered blob %d (squared distance %.3f)", c, best)
		}
		fmt.Printf("blob %d recovered (squared centroid error %.4f)\n", c, best)
	}
	fmt.Printf("engine: %s\n", ctx.Metrics())
}
