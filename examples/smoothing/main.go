// Smoothing: the Section 3 matrix-smoothing query — each output cell
// is the average of its 3x3 neighborhood, with boundary handling
// expressed declaratively through range generators and guards:
//
//	C_ij = avg of M_IJ for |I-i| <= 1, |J-j| <= 1 within bounds
//
// This query falls outside the block-translation rules (it has range
// generators), so the planner uses the Section 4 coordinate pipeline —
// the example shows the fallback is still a correct, fully distributed
// translation, and also demonstrates a Rule 19 replication query
// (row rotation) that stays on the block path.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/linalg"
)

func main() {
	const n, tile = 120, 30

	s := core.NewSession(core.Config{TileSize: tile})
	d := linalg.RandDense(n, n, 0, 100, 11)
	s.RegisterDense("M", d)
	s.RegisterScalar("n", int64(n))

	smoothing := `tiled(n,n)[ ((ii,jj), (+/a) / float(count(a)))
	  | ((i,j),a) <- M,
	    ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),
	    ii >= 0, ii < n, jj >= 0, jj < n,
	    group by (ii,jj) ]`

	plan, err := s.Explain(smoothing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("smoothing plan:", plan)
	sm, err := s.QueryMatrix(smoothing)
	if err != nil {
		log.Fatal(err)
	}
	got := sm.ToDense()

	// Verify a corner (4 neighbors), an edge (6), and an interior cell (9).
	check := func(i, j int) {
		var sum float64
		var cnt int
		for ii := i - 1; ii <= i+1; ii++ {
			for jj := j - 1; jj <= j+1; jj++ {
				if ii >= 0 && ii < n && jj >= 0 && jj < n {
					sum += d.At(ii, jj)
					cnt++
				}
			}
		}
		want := sum / float64(cnt)
		if diff := got.At(i, j) - want; diff > 1e-9 || diff < -1e-9 {
			log.Fatalf("cell (%d,%d): got %v want %v", i, j, got.At(i, j), want)
		}
		fmt.Printf("cell (%3d,%3d): %8.3f (avg of %d neighbors) ok\n", i, j, got.At(i, j), cnt)
	}
	check(0, 0)
	check(0, n/2)
	check(n/2, n/2)

	// A Rule 19 query on the same matrix: rotate rows down by one.
	rotation := "tiled(n,n)[ (((i+1) % n, j), v) | ((i,j),v) <- M ]"
	plan, err = s.Explain(rotation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrotation plan:", plan)
	rot, err := s.QueryMatrix(rotation)
	if err != nil {
		log.Fatal(err)
	}
	rd := rot.ToDense()
	if rd.At(1, 0) != d.At(0, 0) || rd.At(0, 0) != d.At(n-1, 0) {
		log.Fatal("rotation incorrect")
	}
	fmt.Println("rotation verified: row i moved to row (i+1) mod n")
}
