// DIABLO front end: imperative array loops translated to SAC
// comprehensions and compiled to distributed block-array plans — the
// "drop-in back end" integration the paper describes in Section 1.1.
// The loop-based matrix multiplication below compiles to the SUMMA
// group-by-join without the programmer writing a comprehension.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/comp"
	"repro/internal/dataflow"
	"repro/internal/diablo"
	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/sacparser"
	"repro/internal/tiled"
)

const program = `
var C: matrix[n, m];
var V: vector[n];

// block matrix multiplication, written as loops
for i = 0, n-1 do
    for k = 0, l-1 do
        for j = 0, m-1 do
            C[i, j] += M[i, k] * N[k, j];

// row sums of the product, reading the previous result
for i = 0, n-1 do
    for j = 0, m-1 do
        V[i] += C[i, j];
`

func main() {
	const n, l, m, tile = 300, 200, 250, 50

	ctx := dataflow.NewLocalContext()
	da := linalg.RandDense(n, l, 0, 2, 1)
	db := linalg.RandDense(l, m, 0, 2, 2)
	cat := plan.NewCatalog(ctx).
		BindMatrix("M", tiled.FromDense(ctx, da, tile, 8)).
		BindMatrix("N", tiled.FromDense(ctx, db, tile, 8)).
		BindScalar("n", int64(n)).
		BindScalar("l", int64(l)).
		BindScalar("m", int64(m))

	prog, err := diablo.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	// Show the comprehensions the loops translate to.
	asgs, err := diablo.Translate(prog, "tiled")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loop nests translated to comprehensions:")
	for _, a := range asgs {
		fmt.Printf("  %s = %s\n", a.Dest, a.Query)
	}

	plans, err := diablo.RunDistributed(prog, cat, opt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nchosen physical plans:")
	for _, p := range plans {
		fmt.Printf("  %s\n", p)
	}

	// Verify a corner of C against the dense product, and V's total
	// against the product's total.
	res, err := plan.Run(
		sacparser.MustParse("rdd[ ((i,j), v) | ((i,j),v) <- C, i < 2, j < 2 ]"),
		cat, opt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	want := linalg.Mul(da, db)
	for _, row := range res.List {
		tup := comp.MustTuple(row)
		key := comp.MustTuple(tup[0])
		i, j := comp.MustInt(key[0]), comp.MustInt(key[1])
		if math.Abs(comp.MustFloat(tup[1])-want.At(int(i), int(j))) > 1e-6 {
			log.Fatalf("C[%d,%d] mismatch", i, j)
		}
	}
	total, err := plan.Run(sacparser.MustParse("+/[ v | (i,v) <- V ]"), cat, opt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if math.Abs(comp.MustFloat(total.Scalar)-want.Sum()) > 1e-4 {
		log.Fatalf("V total %v, want %v", total.Scalar, want.Sum())
	}
	fmt.Println("\nC spot-checked against the dense product; V verified as its row sums")
}
