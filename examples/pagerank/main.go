// PageRank: a classic DISC workload built from the reproduction's
// extension pieces — a sparse (CSR-tiled) adjacency matrix (the
// paper's future-work storage), distributed sparse matrix-vector
// products, and power iteration:
//
//	r <- d * (M r) + (1-d)/n
//
// where M is the column-stochastic link matrix of a random graph.
// The example checks that the rank vector stays a probability
// distribution and that the iteration converges.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/dataflow"
	"repro/internal/linalg"
	"repro/internal/tiled"
)

func main() {
	const (
		n       = 2000
		degree  = 8
		tile    = 200
		damping = 0.85
		maxIter = 40
		tol     = 1e-10
	)
	ctx := dataflow.NewLocalContext()

	// Random graph: each node links to `degree` random targets; the
	// link matrix is column-stochastic (column j spreads 1/outdeg(j)
	// over its targets). Dangling nodes are given a self-link so
	// columns always sum to 1.
	rng := rand.New(rand.NewSource(7))
	coo := linalg.NewCOO(n, n)
	for j := 0; j < n; j++ {
		targets := map[int]bool{}
		for len(targets) < degree {
			t := rng.Intn(n)
			if t != j {
				targets[t] = true
			}
		}
		w := 1.0 / float64(len(targets))
		for t := range targets {
			coo.Append(t, j, w)
		}
	}
	m := tiled.SparseFromCOO(ctx, coo, tile, 8)
	fmt.Printf("graph: %d nodes, %d edges, %d of %d tiles stored\n",
		n, coo.NNZ(), dataflow.Count(m.Tiles), m.BlockRows()*m.BlockCols())

	// Uniform start.
	r := tiled.VectorFromDense(ctx, uniform(n), tile, 8)

	iter := 0
	for ; iter < maxIter; iter++ {
		next := m.MatVec(r).Scale(damping).AddScalar((1 - damping) / float64(n))
		delta := next.MaxAbsDiff(r)
		r = next
		if delta < tol {
			break
		}
	}
	ranks := r.ToDense()

	if s := ranks.Sum(); math.Abs(s-1) > 1e-9 {
		log.Fatalf("rank mass %v, want 1", s)
	}
	top, topRank := 0, 0.0
	for i, v := range ranks.Data {
		if v > topRank {
			top, topRank = i, v
		}
	}
	fmt.Printf("converged after %d iterations\n", iter+1)
	fmt.Printf("top-ranked node: %d (rank %.6f, uniform would be %.6f)\n",
		top, topRank, 1.0/float64(n))
	fmt.Printf("engine: %s\n", ctx.Metrics())
}

func uniform(n int) *linalg.Vector {
	v := linalg.NewVector(n)
	for i := range v.Data {
		v.Data[i] = 1.0 / float64(n)
	}
	return v
}
