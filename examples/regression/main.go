// Regression: ordinary least squares via the normal equations,
// composing SAC comprehensions with a black-box local kernel — the
// integration style the paper's conclusion prescribes for operations
// that are hard to express as comprehensions ("such operations should
// be coded as black-box library functions ... such as BLAS or
// LAPACK"):
//
//	theta = (X^T X)^-1 X^T y
//
// The distributed part — the Gram matrix X^T X (a group-by-join) and
// X^T y (a matrix-vector group-by-join) — runs as SAC queries; the
// small k x k solve uses the local LU kernel.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/linalg"
)

func main() {
	const (
		rows = 5000 // observations
		k    = 8    // features
		tile = 100
	)

	// Synthetic data: y = X theta* + noise.
	rng := rand.New(rand.NewSource(3))
	x := linalg.NewDense(rows, k)
	thetaTrue := linalg.NewVector(k)
	for j := 0; j < k; j++ {
		thetaTrue.Set(j, float64(j+1))
	}
	y := linalg.NewVector(rows)
	for i := 0; i < rows; i++ {
		var dot float64
		for j := 0; j < k; j++ {
			v := rng.NormFloat64()
			x.Set(i, j, v)
			dot += v * thetaTrue.At(j)
		}
		y.Set(i, dot+0.01*rng.NormFloat64())
	}

	s := core.NewSession(core.Config{TileSize: tile})
	s.RegisterDense("X", x)
	s.RegisterDense("Y", linalg.NewDenseFrom(rows, 1, y.Clone().Data)) // y as a column matrix
	s.RegisterScalar("k", int64(k))

	// Gram matrix X^T X: a group-by-join contracting the row index.
	gramQ := `tiled(k,k)[ ((i,j), +/v) | ((r,i),a) <- X, ((rr,j),b) <- X,
	            rr == r, let v = a*b, group by (i,j) ]`
	ex, err := s.Explain(gramQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("X^T X plan:", ex)
	gram, err := s.QueryMatrix(gramQ)
	if err != nil {
		log.Fatal(err)
	}

	// X^T y: same shape with the column matrix Y.
	xtyQ := `tiled(k,1)[ ((i,j), +/v) | ((r,i),a) <- X, ((rr,j),b) <- Y,
	           rr == r, let v = a*b, group by (i,j) ]`
	xty, err := s.QueryMatrix(xtyQ)
	if err != nil {
		log.Fatal(err)
	}

	// The k x k system is tiny: collect it and call the black-box LU
	// kernel, exactly the composition the paper proposes.
	g := gram.ToDense()
	b := xty.ToDense()
	theta, err := linalg.Solve(g, linalg.NewVectorFrom(colToSlice(b)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nestimated coefficients (true values are 1..8):")
	maxErr := 0.0
	for j := 0; j < k; j++ {
		fmt.Printf("  theta[%d] = %8.5f (true %g)\n", j, theta.At(j), thetaTrue.At(j))
		if d := abs(theta.At(j) - thetaTrue.At(j)); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 0.05 {
		log.Fatalf("max coefficient error %v too large", maxErr)
	}
	fmt.Printf("\nmax |error| = %.5f — OLS recovered the model\n", maxErr)
}

func colToSlice(m *linalg.Dense) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, 0)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
