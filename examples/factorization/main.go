// Factorization: the paper's third workload (Section 6) — matrix
// factorization by gradient descent on block matrices. R (n x n, 10%
// dense, integer ratings 1..5) is factored into P (n x k) and Q
// (n x k) by iterating
//
//	E <- R - P Q^T
//	P <- P + gamma (2 E Q - lambda P)
//	Q <- Q + gamma (2 E^T P - lambda Q)
//
// with all multiplications running as SUMMA group-by-joins. The loss
// ||R - P Q^T||^2 is printed per iteration and must decrease.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataflow"
	"repro/internal/linalg"
	"repro/internal/ml"
	"repro/internal/tiled"
)

func main() {
	const (
		n    = 300
		k    = 60
		tile = 50
		iter = 8
	)
	ctx := dataflow.NewLocalContext()
	// The paper's gamma=0.002 is tuned for its scale; the gradient
	// magnitude grows with n and k, so a scale-appropriate step keeps
	// descent stable here (lambda is scale-free).
	cfg := ml.PaperConfig()
	cfg.Gamma = 2e-6

	r := tiled.FromDense(ctx,
		linalg.RandSparseCOO(n, n, 0.1, 5, 1).ToDense(), tile, 8).Persist()
	p := tiled.RandMatrix(ctx, n, k, tile, 8, 0, 1, 2)
	q := tiled.RandMatrix(ctx, n, k, tile, 8, 0, 1, 3)

	fmt.Printf("factorizing a %dx%d rating matrix (10%% dense) into rank-%d factors\n", n, n, k)
	fmt.Printf("gamma=%g lambda=%g, tiles %dx%d\n\n", cfg.Gamma, cfg.Lambda, tile, tile)

	prev := ml.Loss(r, p, q)
	fmt.Printf("iter %2d: loss %.6g\n", 0, prev)
	for it := 1; it <= iter; it++ {
		// Rotate the tile cache: persist the new iterate, then release
		// the superseded one so only the live factors stay pinned.
		np, nq := ml.StepTiled(r, p, q, cfg)
		np.Persist()
		nq.Persist()
		loss := ml.Loss(r, np, nq)
		if it > 1 {
			p.Unpersist()
			q.Unpersist()
		}
		p, q = np, nq
		fmt.Printf("iter %2d: loss %.6g (cached %.1f MiB)\n", it, loss,
			float64(ctx.Metrics().CachedBytes)/(1<<20))
		if loss > prev {
			log.Fatalf("loss increased at iteration %d", it)
		}
		prev = loss
	}
	fmt.Printf("\nengine totals: %s\n", ctx.Metrics())
}
